//! Mnemonic expansion: one source statement → one or more [`Inst`]s.
//!
//! Handles both real instructions and the standard pseudo-instructions
//! (`li`, `la`, `mv`, `call`, `beqz`, …). Expansion lengths are fixed per
//! mnemonic (and, for `li`, per immediate value), so the layout pass can
//! size the text section before labels are resolved.
//!
//! Vector multiply-accumulate operands: the RVV specification writes
//! `vmacc.vv vd, vs1, vs2` while every other vector op is
//! `vop.vv vd, vs2, vs1`. Because multiplication is commutative the two
//! source orders are semantically identical for the MAC family, so this
//! assembler (and the matching disassembler) use the uniform
//! `vd, vs2, vs1` order everywhere.

use std::collections::BTreeMap;

use coyote_isa::inst::{
    AluOp, AluWOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpCvtOp, FpOp, Inst, MemWidth,
    VAddrMode, VCmpOp, VFCmpOp, VFScalar, VFpOp, VIntOp, VMaskOp, VMulOp, VScalar,
};
use coyote_isa::{Csr, FReg, Lmul, Sew, VReg, VType, XReg};

use crate::operand::Operand;

/// Symbol table: labels and `.equ` constants.
pub type Symbols = BTreeMap<String, u64>;

type R<T> = Result<T, String>;

fn get(ops: &[Operand], i: usize) -> R<&Operand> {
    ops.get(i)
        .ok_or_else(|| format!("missing operand {}", i + 1))
}

fn xr(ops: &[Operand], i: usize) -> R<XReg> {
    match get(ops, i)? {
        Operand::X(r) => Ok(*r),
        other => Err(format!(
            "operand {} must be an x register, got {other:?}",
            i + 1
        )),
    }
}

fn fr(ops: &[Operand], i: usize) -> R<FReg> {
    match get(ops, i)? {
        Operand::F(r) => Ok(*r),
        other => Err(format!(
            "operand {} must be an f register, got {other:?}",
            i + 1
        )),
    }
}

fn vr(ops: &[Operand], i: usize) -> R<VReg> {
    match get(ops, i)? {
        Operand::V(r) => Ok(*r),
        other => Err(format!(
            "operand {} must be a v register, got {other:?}",
            i + 1
        )),
    }
}

fn resolve(op: &Operand, symbols: &Symbols) -> R<i64> {
    match op {
        Operand::Imm(v) => Ok(*v),
        Operand::Sym(name) => symbols
            .get(name)
            .map(|&v| v as i64)
            .ok_or_else(|| format!("undefined symbol `{name}`")),
        Operand::Hi(name) => {
            let v = symbols
                .get(name)
                .ok_or_else(|| format!("undefined symbol `{name}`"))?;
            // %hi: upper 20 bits with the +0x800 rounding that pairs
            // with a sign-extended %lo.
            Ok(((v.wrapping_add(0x800) as i64) >> 12) & 0xfffff)
        }
        Operand::Lo(name) => {
            let v = symbols
                .get(name)
                .ok_or_else(|| format!("undefined symbol `{name}`"))?;
            Ok(((*v as i64) << 52) >> 52)
        }
        other => Err(format!("expected an immediate, got {other:?}")),
    }
}

fn imm(ops: &[Operand], i: usize, symbols: &Symbols) -> R<i64> {
    resolve(get(ops, i)?, symbols)
}

fn mem(ops: &[Operand], i: usize, symbols: &Symbols) -> R<(i64, XReg)> {
    match get(ops, i)? {
        Operand::Mem { offset, base } => Ok((resolve(offset, symbols)?, *base)),
        other => Err(format!(
            "operand {} must be a memory operand `off(reg)`, got {other:?}",
            i + 1
        )),
    }
}

/// Base of a vector memory operand: just `(reg)`.
fn vmem_base(ops: &[Operand], i: usize) -> R<XReg> {
    match get(ops, i)? {
        Operand::Mem { offset, base } => {
            if **offset != Operand::Imm(0) {
                return Err("vector memory operands take no offset".to_owned());
            }
            Ok(*base)
        }
        other => Err(format!("operand {} must be `(reg)`, got {other:?}", i + 1)),
    }
}

/// Branch/jump target: a label (resolved PC-relative) or a literal offset.
fn target(ops: &[Operand], i: usize, pc: u64, symbols: &Symbols) -> R<i64> {
    match get(ops, i)? {
        Operand::Imm(v) => Ok(*v),
        Operand::Sym(name) => {
            let addr = symbols
                .get(name)
                .ok_or_else(|| format!("undefined label `{name}`"))?;
            Ok(*addr as i64 - pc as i64)
        }
        other => Err(format!(
            "operand {} must be a label or offset, got {other:?}",
            i + 1
        )),
    }
}

fn csr_operand(ops: &[Operand], i: usize) -> R<Csr> {
    match get(ops, i)? {
        Operand::Sym(name) => Csr::parse(name).ok_or_else(|| format!("unknown csr `{name}`")),
        Operand::Imm(v) => u16::try_from(*v)
            .ok()
            .and_then(|a| Csr::new(a).ok())
            .ok_or_else(|| format!("csr address {v} out of range")),
        other => Err(format!("operand {} must be a csr, got {other:?}", i + 1)),
    }
}

/// Requires the operand at `i` to be the literal `v0` (the merge
/// family's mandatory mask operand).
fn require_v0(ops: &[Operand], i: usize) -> R<()> {
    match get(ops, i)? {
        Operand::V(reg) if reg.index() == 0 => Ok(()),
        other => Err(format!("operand {} must be v0, got {other:?}", i + 1)),
    }
}

/// Whether a trailing `v0.t` mask operand is present at index `i`.
fn mask_at(ops: &[Operand], i: usize) -> bool {
    matches!(ops.get(i), Some(Operand::VMask))
}

/// The `li` expansion for an arbitrary 64-bit immediate.
#[must_use]
pub fn li_sequence(rd: XReg, value: i64) -> Vec<Inst> {
    if (-2048..=2047).contains(&value) {
        return vec![Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1: XReg::ZERO,
            imm: value,
        }];
    }
    if i32::try_from(value).is_ok() {
        let hi20 = (value.wrapping_add(0x800)) >> 12;
        let lui_imm = ((hi20 << 12) as i32) as i64;
        let lo = value.wrapping_sub(lui_imm);
        let mut seq = vec![Inst::Lui { rd, imm: lui_imm }];
        if lo != 0 {
            seq.push(Inst::OpImm32 {
                op: AluWOp::Addw,
                rd,
                rs1: rd,
                imm: lo,
            });
        }
        return seq;
    }
    // General 64-bit constant: materialize the upper part, shift, add the
    // low 12 bits; recurse on the upper part.
    let lo12 = (value << 52) >> 52;
    let hi = (value.wrapping_sub(lo12)) >> 12;
    let mut seq = li_sequence(rd, hi);
    seq.push(Inst::OpImm {
        op: AluOp::Sll,
        rd,
        rs1: rd,
        imm: 12,
    });
    if lo12 != 0 {
        seq.push(Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1: rd,
            imm: lo12,
        });
    }
    seq
}

/// Number of instructions `mnemonic` expands to.
///
/// # Errors
///
/// Returns a message if the mnemonic is unknown or (for `li`) the value
/// operand cannot be evaluated during layout.
pub fn expansion_len(mnemonic: &str, ops: &[Operand], symbols: &Symbols) -> R<usize> {
    match mnemonic {
        "li" => {
            let rd = xr(ops, 0)?;
            let value = imm(ops, 1, symbols)
                .map_err(|e| format!("{e} (li values must be known at layout time)"))?;
            Ok(li_sequence(rd, value).len())
        }
        "la" | "call" => Ok(2),
        _ => Ok(1),
    }
}

/// Expands one statement into machine instructions.
///
/// `pc` is the address of the first emitted instruction; label operands
/// resolve PC-relative against it.
///
/// # Errors
///
/// Returns a message describing the malformed statement.
pub fn expand(mnemonic: &str, ops: &[Operand], pc: u64, symbols: &Symbols) -> R<Vec<Inst>> {
    // Vector mnemonics have systematic shapes; try those first.
    if let Some(insts) = expand_vector(mnemonic, ops, symbols)? {
        return Ok(insts);
    }

    let one = |inst: Inst| Ok(vec![inst]);
    match mnemonic {
        // ---- upper immediates ----
        "lui" | "auipc" => {
            let rd = xr(ops, 0)?;
            let raw = imm(ops, 1, symbols)?;
            if !(-0x8_0000..=0xf_ffff).contains(&raw) {
                return Err(format!("20-bit immediate out of range: {raw}"));
            }
            let value = (((raw & 0xfffff) << 12) as i32) as i64;
            one(if mnemonic == "lui" {
                Inst::Lui { rd, imm: value }
            } else {
                Inst::Auipc { rd, imm: value }
            })
        }
        // ---- jumps ----
        "jal" => {
            // `jal target` or `jal rd, target`.
            let (rd, idx) = if ops.len() == 1 {
                (XReg::RA, 0)
            } else {
                (xr(ops, 0)?, 1)
            };
            let offset = target(ops, idx, pc, symbols)?;
            one(Inst::Jal {
                rd,
                offset: i32::try_from(offset).map_err(|_| "jal offset too large")?,
            })
        }
        "jalr" => {
            // `jalr rs1` | `jalr rd, offset(rs1)` | `jalr rd, rs1, offset`.
            match ops.len() {
                1 => one(Inst::Jalr {
                    rd: XReg::RA,
                    rs1: xr(ops, 0)?,
                    offset: 0,
                }),
                2 => {
                    let rd = xr(ops, 0)?;
                    let (offset, rs1) = mem(ops, 1, symbols)?;
                    one(Inst::Jalr {
                        rd,
                        rs1,
                        offset: i32::try_from(offset).map_err(|_| "jalr offset too large")?,
                    })
                }
                _ => {
                    let rd = xr(ops, 0)?;
                    let rs1 = xr(ops, 1)?;
                    let offset = imm(ops, 2, symbols)?;
                    one(Inst::Jalr {
                        rd,
                        rs1,
                        offset: i32::try_from(offset).map_err(|_| "jalr offset too large")?,
                    })
                }
            }
        }
        "j" => one(Inst::Jal {
            rd: XReg::ZERO,
            offset: i32::try_from(target(ops, 0, pc, symbols)?)
                .map_err(|_| "jump offset too large")?,
        }),
        "jr" => one(Inst::Jalr {
            rd: XReg::ZERO,
            rs1: xr(ops, 0)?,
            offset: 0,
        }),
        "ret" => one(Inst::Jalr {
            rd: XReg::ZERO,
            rs1: XReg::RA,
            offset: 0,
        }),
        "call" => {
            let value = match get(ops, 0)? {
                Operand::Sym(name) => *symbols
                    .get(name)
                    .ok_or_else(|| format!("undefined label `{name}`"))?,
                other => return Err(format!("call target must be a label, got {other:?}")),
            };
            Ok(pcrel_pair(XReg::RA, value, pc, PcrelKind::Call)?)
        }
        "la" => {
            let rd = xr(ops, 0)?;
            let value = match get(ops, 1)? {
                Operand::Sym(name) => *symbols
                    .get(name)
                    .ok_or_else(|| format!("undefined symbol `{name}`"))?,
                other => return Err(format!("la source must be a symbol, got {other:?}")),
            };
            Ok(pcrel_pair(rd, value, pc, PcrelKind::Address)?)
        }
        // ---- branches ----
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            let op = branch_op(mnemonic);
            branch(op, xr(ops, 0)?, xr(ops, 1)?, target(ops, 2, pc, symbols)?)
        }
        "bgt" | "ble" | "bgtu" | "bleu" => {
            // Swapped-operand aliases.
            let op = match mnemonic {
                "bgt" => BranchOp::Lt,
                "ble" => BranchOp::Ge,
                "bgtu" => BranchOp::Ltu,
                _ => BranchOp::Geu,
            };
            branch(op, xr(ops, 1)?, xr(ops, 0)?, target(ops, 2, pc, symbols)?)
        }
        "beqz" | "bnez" | "blez" | "bgez" | "bltz" | "bgtz" => {
            let rs = xr(ops, 0)?;
            let t = target(ops, 1, pc, symbols)?;
            match mnemonic {
                "beqz" => branch(BranchOp::Eq, rs, XReg::ZERO, t),
                "bnez" => branch(BranchOp::Ne, rs, XReg::ZERO, t),
                "blez" => branch(BranchOp::Ge, XReg::ZERO, rs, t),
                "bgez" => branch(BranchOp::Ge, rs, XReg::ZERO, t),
                "bltz" => branch(BranchOp::Lt, rs, XReg::ZERO, t),
                _ => branch(BranchOp::Lt, XReg::ZERO, rs, t),
            }
        }
        // ---- loads/stores ----
        "lb" | "lh" | "lw" | "ld" | "lbu" | "lhu" | "lwu" => {
            let (width, signed) = match mnemonic {
                "lb" => (MemWidth::B, true),
                "lh" => (MemWidth::H, true),
                "lw" => (MemWidth::W, true),
                "ld" => (MemWidth::D, true),
                "lbu" => (MemWidth::B, false),
                "lhu" => (MemWidth::H, false),
                _ => (MemWidth::W, false),
            };
            let rd = xr(ops, 0)?;
            let (offset, rs1) = mem(ops, 1, symbols)?;
            one(Inst::Load {
                width,
                signed,
                rd,
                rs1,
                offset: i32::try_from(offset).map_err(|_| "load offset too large")?,
            })
        }
        "sb" | "sh" | "sw" | "sd" => {
            let width = match mnemonic {
                "sb" => MemWidth::B,
                "sh" => MemWidth::H,
                "sw" => MemWidth::W,
                _ => MemWidth::D,
            };
            let rs2 = xr(ops, 0)?;
            let (offset, rs1) = mem(ops, 1, symbols)?;
            one(Inst::Store {
                width,
                rs2,
                rs1,
                offset: i32::try_from(offset).map_err(|_| "store offset too large")?,
            })
        }
        // ---- ALU immediates ----
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
            let op = match mnemonic {
                "addi" => AluOp::Add,
                "slti" => AluOp::Slt,
                "sltiu" => AluOp::Sltu,
                "xori" => AluOp::Xor,
                "ori" => AluOp::Or,
                "andi" => AluOp::And,
                "slli" => AluOp::Sll,
                "srli" => AluOp::Srl,
                _ => AluOp::Sra,
            };
            one(Inst::OpImm {
                op,
                rd: xr(ops, 0)?,
                rs1: xr(ops, 1)?,
                imm: imm(ops, 2, symbols)?,
            })
        }
        "addiw" | "slliw" | "srliw" | "sraiw" => {
            let op = match mnemonic {
                "addiw" => AluWOp::Addw,
                "slliw" => AluWOp::Sllw,
                "srliw" => AluWOp::Srlw,
                _ => AluWOp::Sraw,
            };
            one(Inst::OpImm32 {
                op,
                rd: xr(ops, 0)?,
                rs1: xr(ops, 1)?,
                imm: imm(ops, 2, symbols)?,
            })
        }
        // ---- ALU register ----
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "mul"
        | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "sll" => AluOp::Sll,
                "slt" => AluOp::Slt,
                "sltu" => AluOp::Sltu,
                "xor" => AluOp::Xor,
                "srl" => AluOp::Srl,
                "sra" => AluOp::Sra,
                "or" => AluOp::Or,
                "and" => AluOp::And,
                "mul" => AluOp::Mul,
                "mulh" => AluOp::Mulh,
                "mulhsu" => AluOp::Mulhsu,
                "mulhu" => AluOp::Mulhu,
                "div" => AluOp::Div,
                "divu" => AluOp::Divu,
                "rem" => AluOp::Rem,
                _ => AluOp::Remu,
            };
            one(Inst::Op {
                op,
                rd: xr(ops, 0)?,
                rs1: xr(ops, 1)?,
                rs2: xr(ops, 2)?,
            })
        }
        "addw" | "subw" | "sllw" | "srlw" | "sraw" | "mulw" | "divw" | "divuw" | "remw"
        | "remuw" => {
            let op = match mnemonic {
                "addw" => AluWOp::Addw,
                "subw" => AluWOp::Subw,
                "sllw" => AluWOp::Sllw,
                "srlw" => AluWOp::Srlw,
                "sraw" => AluWOp::Sraw,
                "mulw" => AluWOp::Mulw,
                "divw" => AluWOp::Divw,
                "divuw" => AluWOp::Divuw,
                "remw" => AluWOp::Remw,
                _ => AluWOp::Remuw,
            };
            one(Inst::Op32 {
                op,
                rd: xr(ops, 0)?,
                rs1: xr(ops, 1)?,
                rs2: xr(ops, 2)?,
            })
        }
        // ---- misc ----
        "fence" => one(Inst::Fence),
        "ecall" => one(Inst::Ecall),
        "ebreak" => one(Inst::Ebreak),
        "nop" => one(Inst::OpImm {
            op: AluOp::Add,
            rd: XReg::ZERO,
            rs1: XReg::ZERO,
            imm: 0,
        }),
        "li" => {
            let rd = xr(ops, 0)?;
            Ok(li_sequence(rd, imm(ops, 1, symbols)?))
        }
        "mv" => one(Inst::OpImm {
            op: AluOp::Add,
            rd: xr(ops, 0)?,
            rs1: xr(ops, 1)?,
            imm: 0,
        }),
        "not" => one(Inst::OpImm {
            op: AluOp::Xor,
            rd: xr(ops, 0)?,
            rs1: xr(ops, 1)?,
            imm: -1,
        }),
        "neg" => one(Inst::Op {
            op: AluOp::Sub,
            rd: xr(ops, 0)?,
            rs1: XReg::ZERO,
            rs2: xr(ops, 1)?,
        }),
        "negw" => one(Inst::Op32 {
            op: AluWOp::Subw,
            rd: xr(ops, 0)?,
            rs1: XReg::ZERO,
            rs2: xr(ops, 1)?,
        }),
        "sext.w" => one(Inst::OpImm32 {
            op: AluWOp::Addw,
            rd: xr(ops, 0)?,
            rs1: xr(ops, 1)?,
            imm: 0,
        }),
        "seqz" => one(Inst::OpImm {
            op: AluOp::Sltu,
            rd: xr(ops, 0)?,
            rs1: xr(ops, 1)?,
            imm: 1,
        }),
        "snez" => one(Inst::Op {
            op: AluOp::Sltu,
            rd: xr(ops, 0)?,
            rs1: XReg::ZERO,
            rs2: xr(ops, 1)?,
        }),
        "sltz" => one(Inst::Op {
            op: AluOp::Slt,
            rd: xr(ops, 0)?,
            rs1: xr(ops, 1)?,
            rs2: XReg::ZERO,
        }),
        "sgtz" => one(Inst::Op {
            op: AluOp::Slt,
            rd: xr(ops, 0)?,
            rs1: XReg::ZERO,
            rs2: xr(ops, 1)?,
        }),
        // ---- CSR ----
        "csrrw" | "csrrs" | "csrrc" => {
            let op = csr_op(mnemonic);
            one(Inst::Csr {
                op,
                rd: xr(ops, 0)?,
                csr: csr_operand(ops, 1)?,
                src: CsrSrc::Reg(xr(ops, 2)?),
            })
        }
        "csrrwi" | "csrrsi" | "csrrci" => {
            let op = csr_op(&mnemonic[..5]);
            let z = imm(ops, 2, symbols)?;
            let z = u8::try_from(z).map_err(|_| "csr immediate out of range")?;
            one(Inst::Csr {
                op,
                rd: xr(ops, 0)?,
                csr: csr_operand(ops, 1)?,
                src: CsrSrc::Imm(z),
            })
        }
        "csrr" => one(Inst::Csr {
            op: CsrOp::Rs,
            rd: xr(ops, 0)?,
            csr: csr_operand(ops, 1)?,
            src: CsrSrc::Reg(XReg::ZERO),
        }),
        "csrw" => one(Inst::Csr {
            op: CsrOp::Rw,
            rd: XReg::ZERO,
            csr: csr_operand(ops, 0)?,
            src: CsrSrc::Reg(xr(ops, 1)?),
        }),
        // ---- atomics ----
        "lr.w" | "lr.d" => one(Inst::Amo {
            op: AmoOp::Lr,
            width: amo_width(mnemonic),
            rd: xr(ops, 0)?,
            rs1: vmem_base(ops, 1)?,
            rs2: XReg::ZERO,
        }),
        "sc.w" | "sc.d" | "amoswap.w" | "amoswap.d" | "amoadd.w" | "amoadd.d" | "amoxor.w"
        | "amoxor.d" | "amoand.w" | "amoand.d" | "amoor.w" | "amoor.d" | "amomin.w"
        | "amomin.d" | "amomax.w" | "amomax.d" | "amominu.w" | "amominu.d" | "amomaxu.w"
        | "amomaxu.d" => {
            let base = mnemonic.split('.').next().unwrap_or(mnemonic);
            let op = match base {
                "sc" => AmoOp::Sc,
                "amoswap" => AmoOp::Swap,
                "amoadd" => AmoOp::Add,
                "amoxor" => AmoOp::Xor,
                "amoand" => AmoOp::And,
                "amoor" => AmoOp::Or,
                "amomin" => AmoOp::Min,
                "amomax" => AmoOp::Max,
                "amominu" => AmoOp::Minu,
                _ => AmoOp::Maxu,
            };
            one(Inst::Amo {
                op,
                width: amo_width(mnemonic),
                rd: xr(ops, 0)?,
                rs1: vmem_base(ops, 2)?,
                rs2: xr(ops, 1)?,
            })
        }
        // ---- D extension ----
        "fld" => {
            let rd = fr(ops, 0)?;
            let (offset, rs1) = mem(ops, 1, symbols)?;
            one(Inst::Fld {
                rd,
                rs1,
                offset: i32::try_from(offset).map_err(|_| "fld offset too large")?,
            })
        }
        "fsd" => {
            let rs2 = fr(ops, 0)?;
            let (offset, rs1) = mem(ops, 1, symbols)?;
            one(Inst::Fsd {
                rs2,
                rs1,
                offset: i32::try_from(offset).map_err(|_| "fsd offset too large")?,
            })
        }
        "fadd.d" | "fsub.d" | "fmul.d" | "fdiv.d" | "fsgnj.d" | "fsgnjn.d" | "fsgnjx.d"
        | "fmin.d" | "fmax.d" => {
            let op = match mnemonic {
                "fadd.d" => FpOp::Add,
                "fsub.d" => FpOp::Sub,
                "fmul.d" => FpOp::Mul,
                "fdiv.d" => FpOp::Div,
                "fsgnj.d" => FpOp::Sgnj,
                "fsgnjn.d" => FpOp::Sgnjn,
                "fsgnjx.d" => FpOp::Sgnjx,
                "fmin.d" => FpOp::Min,
                _ => FpOp::Max,
            };
            one(Inst::FpOp {
                op,
                rd: fr(ops, 0)?,
                rs1: fr(ops, 1)?,
                rs2: fr(ops, 2)?,
            })
        }
        "fmadd.d" | "fmsub.d" | "fnmsub.d" | "fnmadd.d" => {
            let op = match mnemonic {
                "fmadd.d" => FmaOp::Madd,
                "fmsub.d" => FmaOp::Msub,
                "fnmsub.d" => FmaOp::Nmsub,
                _ => FmaOp::Nmadd,
            };
            one(Inst::FpFma {
                op,
                rd: fr(ops, 0)?,
                rs1: fr(ops, 1)?,
                rs2: fr(ops, 2)?,
                rs3: fr(ops, 3)?,
            })
        }
        "feq.d" | "flt.d" | "fle.d" => {
            let op = match mnemonic {
                "feq.d" => FpCmpOp::Eq,
                "flt.d" => FpCmpOp::Lt,
                _ => FpCmpOp::Le,
            };
            one(Inst::FpCmp {
                op,
                rd: xr(ops, 0)?,
                rs1: fr(ops, 1)?,
                rs2: fr(ops, 2)?,
            })
        }
        "fcvt.d.l" | "fcvt.d.lu" | "fcvt.d.w" => {
            let op = match mnemonic {
                "fcvt.d.l" => FpCvtOp::DFromL,
                "fcvt.d.lu" => FpCvtOp::DFromLu,
                _ => FpCvtOp::DFromW,
            };
            one(Inst::FpCvt {
                op,
                rd: fr(ops, 0)?.into(),
                rs1: xr(ops, 1)?.into(),
            })
        }
        "fcvt.l.d" | "fcvt.lu.d" | "fcvt.w.d" => {
            let op = match mnemonic {
                "fcvt.l.d" => FpCvtOp::LFromD,
                "fcvt.lu.d" => FpCvtOp::LuFromD,
                _ => FpCvtOp::WFromD,
            };
            one(Inst::FpCvt {
                op,
                rd: xr(ops, 0)?.into(),
                rs1: fr(ops, 1)?.into(),
            })
        }
        "fmv.x.d" => one(Inst::FmvXD {
            rd: xr(ops, 0)?,
            rs1: fr(ops, 1)?,
        }),
        "fmv.d.x" => one(Inst::FmvDX {
            rd: fr(ops, 0)?,
            rs1: xr(ops, 1)?,
        }),
        "fmv.d" => one(Inst::FpOp {
            op: FpOp::Sgnj,
            rd: fr(ops, 0)?,
            rs1: fr(ops, 1)?,
            rs2: fr(ops, 1)?,
        }),
        "fneg.d" => one(Inst::FpOp {
            op: FpOp::Sgnjn,
            rd: fr(ops, 0)?,
            rs1: fr(ops, 1)?,
            rs2: fr(ops, 1)?,
        }),
        "fabs.d" => one(Inst::FpOp {
            op: FpOp::Sgnjx,
            rd: fr(ops, 0)?,
            rs1: fr(ops, 1)?,
            rs2: fr(ops, 1)?,
        }),
        _ => Err(format!("unknown mnemonic `{mnemonic}`")),
    }
}

fn branch_op(mnemonic: &str) -> BranchOp {
    match mnemonic {
        "beq" => BranchOp::Eq,
        "bne" => BranchOp::Ne,
        "blt" => BranchOp::Lt,
        "bge" => BranchOp::Ge,
        "bltu" => BranchOp::Ltu,
        _ => BranchOp::Geu,
    }
}

fn csr_op(mnemonic: &str) -> CsrOp {
    match mnemonic {
        "csrrw" => CsrOp::Rw,
        "csrrs" => CsrOp::Rs,
        _ => CsrOp::Rc,
    }
}

fn amo_width(mnemonic: &str) -> MemWidth {
    if mnemonic.ends_with(".w") {
        MemWidth::W
    } else {
        MemWidth::D
    }
}

fn branch(op: BranchOp, rs1: XReg, rs2: XReg, offset: i64) -> R<Vec<Inst>> {
    Ok(vec![Inst::Branch {
        op,
        rs1,
        rs2,
        offset: i32::try_from(offset).map_err(|_| "branch offset too large")?,
    }])
}

#[derive(Clone, Copy)]
enum PcrelKind {
    Address,
    Call,
}

/// `auipc`+`addi`/`jalr` pair for PC-relative addressing.
fn pcrel_pair(rd: XReg, value: u64, pc: u64, kind: PcrelKind) -> R<Vec<Inst>> {
    let delta = value.wrapping_sub(pc) as i64;
    let hi20 = (delta.wrapping_add(0x800)) >> 12;
    let auipc_imm = ((hi20 << 12) as i32) as i64;
    let lo = delta.wrapping_sub(auipc_imm);
    if i32::try_from(delta).is_err() {
        return Err(format!("pc-relative target {delta:#x} out of ±2 GiB range"));
    }
    let second = match kind {
        PcrelKind::Address => Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1: rd,
            imm: lo,
        },
        PcrelKind::Call => Inst::Jalr {
            rd,
            rs1: rd,
            offset: lo as i32,
        },
    };
    Ok(vec![Inst::Auipc { rd, imm: auipc_imm }, second])
}

/// Vector mnemonic handling; returns `Ok(None)` when the mnemonic is not
/// a vector instruction.
fn expand_vector(mnemonic: &str, ops: &[Operand], symbols: &Symbols) -> R<Option<Vec<Inst>>> {
    let some = |inst: Inst| Ok(Some(vec![inst]));
    match mnemonic {
        "vsetvli" => {
            let rd = xr(ops, 0)?;
            let rs1 = xr(ops, 1)?;
            let vtype = parse_vtype(&ops[2..])?;
            return some(Inst::Vsetvli { rd, rs1, vtype });
        }
        "vsetivli" => {
            let rd = xr(ops, 0)?;
            let avl = imm(ops, 1, symbols)?;
            let avl = u8::try_from(avl).map_err(|_| "vsetivli avl out of range")?;
            let vtype = parse_vtype(&ops[2..])?;
            return some(Inst::Vsetivli { rd, avl, vtype });
        }
        "vsetvl" => {
            return some(Inst::Vsetvl {
                rd: xr(ops, 0)?,
                rs1: xr(ops, 1)?,
                rs2: xr(ops, 2)?,
            });
        }
        "vmv.v.v" => {
            return some(Inst::VMvVV {
                vd: vr(ops, 0)?,
                vs1: vr(ops, 1)?,
            })
        }
        "vmv.v.x" => {
            return some(Inst::VMvVX {
                vd: vr(ops, 0)?,
                rs1: xr(ops, 1)?,
            })
        }
        "vmv.v.i" => {
            let i = imm(ops, 1, symbols)?;
            return some(Inst::VMvVI {
                vd: vr(ops, 0)?,
                imm: i8::try_from(i).map_err(|_| "vmv.v.i immediate out of range")?,
            });
        }
        "vfmv.v.f" => {
            return some(Inst::VFMvVF {
                vd: vr(ops, 0)?,
                rs1: fr(ops, 1)?,
            })
        }
        "vmv.x.s" => {
            return some(Inst::VMvXS {
                rd: xr(ops, 0)?,
                vs2: vr(ops, 1)?,
            })
        }
        "vmv.s.x" => {
            return some(Inst::VMvSX {
                vd: vr(ops, 0)?,
                rs1: xr(ops, 1)?,
            })
        }
        "vfmv.f.s" => {
            return some(Inst::VFMvFS {
                rd: fr(ops, 0)?,
                vs2: vr(ops, 1)?,
            })
        }
        "vfmv.s.f" => {
            return some(Inst::VFMvSF {
                vd: vr(ops, 0)?,
                rs1: fr(ops, 1)?,
            })
        }
        "vid.v" => {
            return some(Inst::Vid {
                vd: vr(ops, 0)?,
                vm: !mask_at(ops, 1),
            });
        }
        "vcpop.m" => {
            return some(Inst::Vcpop {
                rd: xr(ops, 0)?,
                vs2: vr(ops, 1)?,
                vm: !mask_at(ops, 2),
            });
        }
        "vfirst.m" => {
            return some(Inst::Vfirst {
                rd: xr(ops, 0)?,
                vs2: vr(ops, 1)?,
                vm: !mask_at(ops, 2),
            });
        }
        "vmerge.vvm" => {
            require_v0(ops, 3)?;
            return some(Inst::VMerge {
                vd: vr(ops, 0)?,
                vs2: vr(ops, 1)?,
                src: VScalar::Vector(vr(ops, 2)?),
            });
        }
        "vmerge.vxm" => {
            require_v0(ops, 3)?;
            return some(Inst::VMerge {
                vd: vr(ops, 0)?,
                vs2: vr(ops, 1)?,
                src: VScalar::Xreg(xr(ops, 2)?),
            });
        }
        "vmerge.vim" => {
            require_v0(ops, 3)?;
            let i = imm(ops, 2, symbols)?;
            return some(Inst::VMergeImm {
                vd: vr(ops, 0)?,
                vs2: vr(ops, 1)?,
                imm: i8::try_from(i).map_err(|_| "vmerge immediate out of range")?,
            });
        }
        "vfmerge.vfm" => {
            require_v0(ops, 3)?;
            return some(Inst::VFMerge {
                vd: vr(ops, 0)?,
                vs2: vr(ops, 1)?,
                rs1: fr(ops, 2)?,
            });
        }
        "vredsum.vs" => {
            return some(Inst::VRedSum {
                vd: vr(ops, 0)?,
                vs2: vr(ops, 1)?,
                vs1: vr(ops, 2)?,
                vm: !mask_at(ops, 3),
            });
        }
        "vfredusum.vs" | "vfredsum.vs" => {
            return some(Inst::VFRedSum {
                vd: vr(ops, 0)?,
                vs2: vr(ops, 1)?,
                vs1: vr(ops, 2)?,
                vm: !mask_at(ops, 3),
            });
        }
        _ => {}
    }

    // Vector memory: v{l,s}{e,se,uxei}<bits>.v
    if let Some(parsed) = parse_vmem_mnemonic(mnemonic) {
        let (is_load, needs_extra, eew) = parsed;
        let vreg0 = vr(ops, 0)?;
        let rs1 = vmem_base(ops, 1)?;
        let (mode, mask_idx) = match needs_extra {
            VMemExtra::None => (VAddrMode::Unit, 2),
            VMemExtra::Stride => (VAddrMode::Strided(xr(ops, 2)?), 3),
            VMemExtra::Index => (VAddrMode::Indexed(vr(ops, 2)?), 3),
        };
        let vm = !mask_at(ops, mask_idx);
        return some(if is_load {
            Inst::VLoad {
                vd: vreg0,
                rs1,
                mode,
                eew,
                vm,
            }
        } else {
            Inst::VStore {
                vs3: vreg0,
                rs1,
                mode,
                eew,
                vm,
            }
        });
    }

    // Vector arithmetic: <base>.<form> where form ∈ {vv, vx, vi, vf, mm}.
    let Some((base, form)) = mnemonic.rsplit_once('.') else {
        return Ok(None);
    };
    if !matches!(form, "vv" | "vx" | "vi" | "vf" | "mm") {
        return Ok(None);
    }
    if form == "mm" {
        let op = match base {
            "vmand" => VMaskOp::And,
            "vmnand" => VMaskOp::Nand,
            "vmandn" | "vmandnot" => VMaskOp::AndNot,
            "vmxor" => VMaskOp::Xor,
            "vmor" => VMaskOp::Or,
            "vmnor" => VMaskOp::Nor,
            "vmorn" | "vmornot" => VMaskOp::OrNot,
            "vmxnor" => VMaskOp::Xnor,
            _ => return Ok(None),
        };
        return some(Inst::VMaskLogical {
            op,
            vd: vr(ops, 0)?,
            vs2: vr(ops, 1)?,
            vs1: vr(ops, 2)?,
        });
    }
    let vcmp = |name: &str| -> Option<VCmpOp> {
        Some(match name {
            "vmseq" => VCmpOp::Eq,
            "vmsne" => VCmpOp::Ne,
            "vmsltu" => VCmpOp::Ltu,
            "vmslt" => VCmpOp::Lt,
            "vmsleu" => VCmpOp::Leu,
            "vmsle" => VCmpOp::Le,
            "vmsgtu" => VCmpOp::Gtu,
            "vmsgt" => VCmpOp::Gt,
            _ => return None,
        })
    };
    if let Some(op) = vcmp(base) {
        let vd = vr(ops, 0)?;
        let vs2 = vr(ops, 1)?;
        let vm = !mask_at(ops, 3);
        return some(match form {
            "vv" => Inst::VMaskCmp {
                op,
                vd,
                vs2,
                src: VScalar::Vector(vr(ops, 2)?),
                vm,
            },
            "vx" => Inst::VMaskCmp {
                op,
                vd,
                vs2,
                src: VScalar::Xreg(xr(ops, 2)?),
                vm,
            },
            "vi" => {
                let i = imm(ops, 2, symbols)?;
                Inst::VMaskCmpImm {
                    op,
                    vd,
                    vs2,
                    imm: i8::try_from(i).map_err(|_| "compare immediate out of range")?,
                    vm,
                }
            }
            _ => return Err(format!("`{mnemonic}` has no {form} form")),
        });
    }
    let vfcmp = |name: &str| -> Option<VFCmpOp> {
        Some(match name {
            "vmfeq" => VFCmpOp::Eq,
            "vmfle" => VFCmpOp::Le,
            "vmflt" => VFCmpOp::Lt,
            "vmfne" => VFCmpOp::Ne,
            "vmfgt" => VFCmpOp::Gt,
            "vmfge" => VFCmpOp::Ge,
            _ => return None,
        })
    };
    if let Some(op) = vfcmp(base) {
        let vd = vr(ops, 0)?;
        let vs2 = vr(ops, 1)?;
        let vm = !mask_at(ops, 3);
        return some(match form {
            "vv" => Inst::VFMaskCmp {
                op,
                vd,
                vs2,
                src: VFScalar::Vector(vr(ops, 2)?),
                vm,
            },
            "vf" => Inst::VFMaskCmp {
                op,
                vd,
                vs2,
                src: VFScalar::Freg(fr(ops, 2)?),
                vm,
            },
            _ => return Err(format!("`{mnemonic}` has no {form} form")),
        });
    }
    let vint = |name: &str| -> Option<VIntOp> {
        Some(match name {
            "vadd" => VIntOp::Add,
            "vsub" => VIntOp::Sub,
            "vrsub" => VIntOp::Rsub,
            "vand" => VIntOp::And,
            "vor" => VIntOp::Or,
            "vxor" => VIntOp::Xor,
            "vsll" => VIntOp::Sll,
            "vsrl" => VIntOp::Srl,
            "vsra" => VIntOp::Sra,
            "vmin" => VIntOp::Min,
            "vmax" => VIntOp::Max,
            "vminu" => VIntOp::Minu,
            "vmaxu" => VIntOp::Maxu,
            _ => return None,
        })
    };
    let vmul = |name: &str| -> Option<VMulOp> {
        Some(match name {
            "vmul" => VMulOp::Mul,
            "vmulh" => VMulOp::Mulh,
            "vmulhu" => VMulOp::Mulhu,
            "vdiv" => VMulOp::Div,
            "vdivu" => VMulOp::Divu,
            "vrem" => VMulOp::Rem,
            "vremu" => VMulOp::Remu,
            "vmacc" => VMulOp::Macc,
            _ => return None,
        })
    };
    let vfp = |name: &str| -> Option<VFpOp> {
        Some(match name {
            "vfadd" => VFpOp::Add,
            "vfsub" => VFpOp::Sub,
            "vfmul" => VFpOp::Mul,
            "vfdiv" => VFpOp::Div,
            "vfmin" => VFpOp::Min,
            "vfmax" => VFpOp::Max,
            "vfsgnj" => VFpOp::Sgnj,
            "vfmacc" => VFpOp::Macc,
            _ => return None,
        })
    };

    if let Some(op) = vint(base) {
        let vd = vr(ops, 0)?;
        let vs2 = vr(ops, 1)?;
        let vm = !mask_at(ops, 3);
        return some(match form {
            "vv" => Inst::VIntOp {
                op,
                vd,
                vs2,
                src: VScalar::Vector(vr(ops, 2)?),
                vm,
            },
            "vx" => Inst::VIntOp {
                op,
                vd,
                vs2,
                src: VScalar::Xreg(xr(ops, 2)?),
                vm,
            },
            "vi" => {
                let i = imm(ops, 2, symbols)?;
                let range = if matches!(op, VIntOp::Sll | VIntOp::Srl | VIntOp::Sra) {
                    0..=31
                } else {
                    -16..=15
                };
                if !range.contains(&i) {
                    return Err(format!("vector immediate {i} out of range"));
                }
                Inst::VIntOpImm {
                    op,
                    vd,
                    vs2,
                    imm: i as i8,
                    vm,
                }
            }
            _ => return Err(format!("`{mnemonic}` has no {form} form")),
        });
    }
    if let Some(op) = vmul(base) {
        let vd = vr(ops, 0)?;
        let vs2 = vr(ops, 1)?;
        let vm = !mask_at(ops, 3);
        return some(match form {
            "vv" => Inst::VMulOp {
                op,
                vd,
                vs2,
                src: VScalar::Vector(vr(ops, 2)?),
                vm,
            },
            "vx" => Inst::VMulOp {
                op,
                vd,
                vs2,
                src: VScalar::Xreg(xr(ops, 2)?),
                vm,
            },
            _ => return Err(format!("`{mnemonic}` has no {form} form")),
        });
    }
    if let Some(op) = vfp(base) {
        let vd = vr(ops, 0)?;
        let vs2 = vr(ops, 1)?;
        let vm = !mask_at(ops, 3);
        return some(match form {
            "vv" => Inst::VFpOp {
                op,
                vd,
                vs2,
                src: VFScalar::Vector(vr(ops, 2)?),
                vm,
            },
            "vf" => Inst::VFpOp {
                op,
                vd,
                vs2,
                src: VFScalar::Freg(fr(ops, 2)?),
                vm,
            },
            _ => return Err(format!("`{mnemonic}` has no {form} form")),
        });
    }
    Ok(None)
}

enum VMemExtra {
    None,
    Stride,
    Index,
}

/// Parses `v{l,s}{e,se,uxei}<bits>.v`.
fn parse_vmem_mnemonic(mnemonic: &str) -> Option<(bool, VMemExtra, Sew)> {
    let rest = mnemonic.strip_prefix('v')?;
    let (is_load, rest) = if let Some(r) = rest.strip_prefix('l') {
        (true, r)
    } else if let Some(r) = rest.strip_prefix('s') {
        (false, r)
    } else {
        return None;
    };
    let rest = rest.strip_suffix(".v")?;
    let (extra, digits) = if let Some(r) = rest.strip_prefix("uxei") {
        (VMemExtra::Index, r)
    } else if let Some(r) = rest.strip_prefix("se") {
        (VMemExtra::Stride, r)
    } else if let Some(r) = rest.strip_prefix('e') {
        (VMemExtra::None, r)
    } else {
        return None;
    };
    let eew = match digits {
        "8" => Sew::E8,
        "16" => Sew::E16,
        "32" => Sew::E32,
        "64" => Sew::E64,
        _ => return None,
    };
    Some((is_load, extra, eew))
}

/// Parses the trailing `eXX,mY,ta,ma` operands of a `vset*` instruction.
fn parse_vtype(ops: &[Operand]) -> R<VType> {
    let mut sew = None;
    let mut lmul = None;
    let mut ta = false;
    let mut ma = false;
    for op in ops {
        let Operand::Sym(word) = op else {
            return Err(format!("invalid vtype element {op:?}"));
        };
        match word.as_str() {
            "e8" => sew = Some(Sew::E8),
            "e16" => sew = Some(Sew::E16),
            "e32" => sew = Some(Sew::E32),
            "e64" => sew = Some(Sew::E64),
            "mf8" => lmul = Some(Lmul::MF8),
            "mf4" => lmul = Some(Lmul::MF4),
            "mf2" => lmul = Some(Lmul::MF2),
            "m1" => lmul = Some(Lmul::M1),
            "m2" => lmul = Some(Lmul::M2),
            "m4" => lmul = Some(Lmul::M4),
            "m8" => lmul = Some(Lmul::M8),
            "ta" => ta = true,
            "tu" => ta = false,
            "ma" => ma = true,
            "mu" => ma = false,
            other => return Err(format!("invalid vtype element `{other}`")),
        }
    }
    Ok(VType {
        sew: sew.ok_or("vtype missing element width")?,
        lmul: lmul.ok_or("vtype missing lmul")?,
        ta,
        ma,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ops(text: &str) -> Vec<Operand> {
        crate::operand::split_operands(text)
            .iter()
            .map(|t| Operand::parse(t).unwrap())
            .collect()
    }

    fn expand1(mnemonic: &str, ops_text: &str) -> Inst {
        let ops = parse_ops(ops_text);
        let insts = expand(mnemonic, &ops, 0x8000_0000, &Symbols::new()).unwrap();
        assert_eq!(insts.len(), 1);
        insts[0]
    }

    #[test]
    fn li_small_medium_large() {
        let rd = XReg::A0;
        assert_eq!(li_sequence(rd, 5).len(), 1);
        assert_eq!(li_sequence(rd, -2048).len(), 1);
        assert_eq!(li_sequence(rd, 0x1000).len(), 1); // lui only, lo == 0
        assert_eq!(li_sequence(rd, 0x12345).len(), 2);
        assert!(li_sequence(rd, 0x1234_5678_9abc_def0).len() >= 5);
    }

    /// Interpret an li sequence to verify it materializes the value.
    fn run_li(value: i64) -> i64 {
        let seq = li_sequence(XReg::A0, value);
        let mut reg: i64 = 0;
        for inst in seq {
            match inst {
                Inst::OpImm {
                    op: AluOp::Add,
                    imm,
                    ..
                } => reg = reg.wrapping_add(imm),
                Inst::OpImm {
                    op: AluOp::Sll,
                    imm,
                    ..
                } => reg <<= imm,
                Inst::Lui { imm, .. } => reg = imm,
                Inst::OpImm32 {
                    op: AluWOp::Addw,
                    imm,
                    ..
                } => reg = i64::from((reg.wrapping_add(imm)) as i32),
                other => panic!("unexpected inst in li sequence: {other:?}"),
            }
        }
        reg
    }

    #[test]
    fn li_materializes_exact_values() {
        for v in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x7fff_ffff,
            -0x8000_0000,
            0x8000_0000,
            0x1234_5678,
            -0x1234_5678,
            0x1234_5678_9abc_def0,
            i64::MAX,
            i64::MIN,
            0x8000_0000_0000_0000u64 as i64,
        ] {
            assert_eq!(run_li(v), v, "li of {v:#x}");
        }
    }

    #[test]
    fn branch_to_label_is_pc_relative() {
        let mut symbols = Symbols::new();
        symbols.insert("loop".to_owned(), 0x8000_0000);
        let ops = parse_ops("a0, a1, loop");
        let insts = expand("bne", &ops, 0x8000_0010, &symbols).unwrap();
        assert_eq!(
            insts[0],
            Inst::Branch {
                op: BranchOp::Ne,
                rs1: XReg::A0,
                rs2: XReg::A1,
                offset: -16
            }
        );
    }

    #[test]
    fn la_emits_auipc_addi() {
        let mut symbols = Symbols::new();
        symbols.insert("data".to_owned(), 0x8100_0008);
        let ops = parse_ops("a0, data");
        let insts = expand("la", &ops, 0x8000_0000, &symbols).unwrap();
        assert_eq!(insts.len(), 2);
        let Inst::Auipc { imm: hi, .. } = insts[0] else {
            panic!("expected auipc");
        };
        let Inst::OpImm { imm: lo, .. } = insts[1] else {
            panic!("expected addi");
        };
        assert_eq!(0x8000_0000i64 + hi + lo, 0x8100_0008);
    }

    #[test]
    fn pseudo_expansions() {
        assert_eq!(
            expand1("mv", "a0, a1"),
            Inst::OpImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::A1,
                imm: 0
            }
        );
        assert_eq!(
            expand1("nop", ""),
            Inst::OpImm {
                op: AluOp::Add,
                rd: XReg::ZERO,
                rs1: XReg::ZERO,
                imm: 0
            }
        );
        assert!(matches!(expand1("ret", ""), Inst::Jalr { .. }));
        assert!(matches!(
            expand1("csrr", "a0, mhartid"),
            Inst::Csr {
                op: CsrOp::Rs,
                src: CsrSrc::Reg(XReg::ZERO),
                ..
            }
        ));
    }

    #[test]
    fn vector_memory_forms() {
        assert!(matches!(
            expand1("vle64.v", "v8, (a0)"),
            Inst::VLoad {
                mode: VAddrMode::Unit,
                eew: Sew::E64,
                vm: true,
                ..
            }
        ));
        assert!(matches!(
            expand1("vlse64.v", "v8, (a0), t0"),
            Inst::VLoad {
                mode: VAddrMode::Strided(_),
                ..
            }
        ));
        assert!(matches!(
            expand1("vluxei64.v", "v8, (a0), v16"),
            Inst::VLoad {
                mode: VAddrMode::Indexed(_),
                ..
            }
        ));
        assert!(matches!(
            expand1("vse32.v", "v8, (a0), v0.t"),
            Inst::VStore {
                eew: Sew::E32,
                vm: false,
                ..
            }
        ));
    }

    #[test]
    fn vector_arith_forms() {
        assert!(matches!(
            expand1("vadd.vv", "v1, v2, v3"),
            Inst::VIntOp {
                op: VIntOp::Add,
                src: VScalar::Vector(_),
                vm: true,
                ..
            }
        ));
        assert!(matches!(
            expand1("vsll.vi", "v1, v2, 3"),
            Inst::VIntOpImm {
                op: VIntOp::Sll,
                imm: 3,
                ..
            }
        ));
        assert!(matches!(
            expand1("vfmacc.vf", "v1, v2, fa0"),
            Inst::VFpOp {
                op: VFpOp::Macc,
                src: VFScalar::Freg(_),
                ..
            }
        ));
        assert!(matches!(
            expand1("vmacc.vx", "v1, v2, a0, v0.t"),
            Inst::VMulOp {
                op: VMulOp::Macc,
                vm: false,
                ..
            }
        ));
    }

    #[test]
    fn vsetvli_parses_joined_vtype() {
        let inst = expand1("vsetvli", "t0, a0, e64,m1,ta,ma");
        assert_eq!(
            inst,
            Inst::Vsetvli {
                rd: XReg::parse("t0").unwrap(),
                rs1: XReg::A0,
                vtype: VType::new(Sew::E64, Lmul::M1),
            }
        );
    }

    #[test]
    fn errors_are_descriptive() {
        let err = expand("bogus", &[], 0, &Symbols::new()).unwrap_err();
        assert!(err.contains("bogus"));
        let ops = parse_ops("a0, a1, nowhere");
        let err = expand("beq", &ops, 0, &Symbols::new()).unwrap_err();
        assert!(err.contains("nowhere"));
        let ops = parse_ops("v1, v2, 99");
        assert!(expand("vadd.vi", &ops, 0, &Symbols::new()).is_err());
    }

    #[test]
    fn expansion_len_matches_expand() {
        let symbols = {
            let mut s = Symbols::new();
            s.insert("somewhere".to_owned(), 0x8000_0100);
            s
        };
        for (mnemonic, ops_text) in [
            ("li", "a0, 0x123456789"),
            ("li", "a0, 7"),
            ("la", "a0, somewhere"),
            ("call", "somewhere"),
            ("add", "a0, a1, a2"),
            ("vadd.vv", "v1, v2, v3"),
        ] {
            let ops = parse_ops(ops_text);
            let len = expansion_len(mnemonic, &ops, &symbols).unwrap();
            let insts = expand(mnemonic, &ops, 0x8000_0000, &symbols).unwrap();
            assert_eq!(len, insts.len(), "{mnemonic} {ops_text}");
        }
    }

    #[test]
    fn amo_forms() {
        assert!(matches!(
            expand1("lr.d", "a0, (a1)"),
            Inst::Amo { op: AmoOp::Lr, .. }
        ));
        assert!(matches!(
            expand1("amoadd.w", "a0, a2, (a1)"),
            Inst::Amo {
                op: AmoOp::Add,
                width: MemWidth::W,
                ..
            }
        ));
    }
}
