//! A two-pass RISC-V assembler for Coyote's baremetal kernels.
//!
//! The paper's kernels are assembled with the GNU toolchain; this crate
//! replaces that external dependency with a self-contained assembler for
//! the instruction subset defined in [`coyote_isa`]. It supports labels,
//! the common pseudo-instructions (`li`, `la`, `call`, `mv`, branch
//! aliases, …), `.text`/`.data` sections and the data directives kernels
//! need (`.word`, `.dword`, `.double`, `.zero`, `.align`, `.equ`).
//!
//! # Examples
//!
//! ```
//! use coyote_asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     ".data
//!      value:
//!         .dword 41
//!      .text
//!      _start:
//!         la t0, value
//!         ld a0, 0(t0)
//!         addi a0, a0, 1
//!         ecall",
//! )?;
//! assert_eq!(program.text().len(), 5); // la expands to two instructions
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembler;
pub mod error;
pub mod expand;
pub mod operand;
pub mod program;

pub use assembler::{assemble, Assembler};
pub use error::AsmError;
pub use program::Program;
