//! The assembled program image loaded into the simulator.

use std::collections::BTreeMap;
use std::fmt;

/// Default base address of the text section (mirrors the conventional
/// RISC-V baremetal reset address).
pub const DEFAULT_TEXT_BASE: u64 = 0x8000_0000;
/// Default base address of the data section.
pub const DEFAULT_DATA_BASE: u64 = 0x8100_0000;

/// An assembled baremetal program: code, initialized data and symbols.
///
/// Produced by [`crate::assemble`] (or [`crate::Assembler`]) and consumed
/// by the simulator's loader. All harts begin execution at
/// [`Program::entry`]; kernels read `mhartid` to partition work.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    text_base: u64,
    text: Vec<u32>,
    data_base: u64,
    data: Vec<u8>,
    entry: u64,
    symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Creates a program from raw parts. Library users normally obtain
    /// programs from the assembler instead.
    #[must_use]
    pub fn from_parts(
        text_base: u64,
        text: Vec<u32>,
        data_base: u64,
        data: Vec<u8>,
        entry: u64,
        symbols: BTreeMap<String, u64>,
    ) -> Program {
        Program {
            text_base,
            text,
            data_base,
            data,
            entry,
            symbols,
        }
    }

    /// Base address of the text section.
    #[must_use]
    pub fn text_base(&self) -> u64 {
        self.text_base
    }

    /// Encoded instruction words in text-section order.
    #[must_use]
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Base address of the data section.
    #[must_use]
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Initialized data bytes.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Address of the first executed instruction.
    #[must_use]
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Looks up a label or `.equ` symbol.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Total footprint (text + data bytes).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.text.len() * 4 + self.data.len()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} insts @ {:#x}, {} data bytes @ {:#x}, entry {:#x}",
            self.text.len(),
            self.text_base,
            self.data.len(),
            self.data_base,
            self.entry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_parts() {
        let mut symbols = BTreeMap::new();
        symbols.insert("main".to_owned(), 0x8000_0000);
        let p = Program::from_parts(
            0x8000_0000,
            vec![0x13, 0x13],
            0x8100_0000,
            vec![1, 2, 3],
            0x8000_0000,
            symbols,
        );
        assert_eq!(p.text().len(), 2);
        assert_eq!(p.data(), &[1, 2, 3]);
        assert_eq!(p.symbol("main"), Some(0x8000_0000));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.size_bytes(), 11);
        assert_eq!(p.symbols().count(), 1);
        assert!(p.to_string().contains("2 insts"));
    }
}
