//! Assembler error type.

use std::fmt;

/// Error produced while assembling a source text.
///
/// Carries the 1-based source line so kernel authors can find the
/// offending statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl AsmError {
    /// Creates an error at `line` with the given message.
    #[must_use]
    pub fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(42, "unknown mnemonic `bogus`");
        assert_eq!(e.to_string(), "line 42: unknown mnemonic `bogus`");
    }
}
