//! Operand lexing and parsing.
//!
//! Operands are parsed without symbol resolution: label references stay
//! textual until the emit pass, when addresses are known.

use coyote_isa::{FReg, VReg, XReg};

/// A parsed instruction operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Integer register.
    X(XReg),
    /// Floating-point register.
    F(FReg),
    /// Vector register.
    V(VReg),
    /// Numeric immediate.
    Imm(i64),
    /// Unresolved symbol reference (label or `.equ` constant).
    Sym(String),
    /// `%hi(symbol)` relocation-style operand.
    Hi(String),
    /// `%lo(symbol)` relocation-style operand.
    Lo(String),
    /// Memory operand `offset(base)`.
    Mem {
        /// Offset expression (immediate, symbol or `%lo`).
        offset: Box<Operand>,
        /// Base register.
        base: XReg,
    },
    /// The `v0.t` mask operand.
    VMask,
}

impl Operand {
    /// Parses one operand.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not a recognizable operand.
    pub fn parse(text: &str) -> Result<Operand, String> {
        let text = text.trim();
        if text.is_empty() {
            return Err("empty operand".to_owned());
        }
        if text == "v0.t" {
            return Ok(Operand::VMask);
        }
        if let Some(reg) = XReg::parse(text) {
            return Ok(Operand::X(reg));
        }
        if let Some(reg) = FReg::parse(text) {
            return Ok(Operand::F(reg));
        }
        if let Some(reg) = VReg::parse(text) {
            return Ok(Operand::V(reg));
        }
        // Memory operand: anything ending in `(reg)` whose parenthesized
        // tail names a register. Checked before `%hi`/`%lo` so that
        // `%lo(sym)(reg)` parses as a memory operand.
        if let Some(open) = text.rfind('(') {
            if let Some(stripped) = text.strip_suffix(')') {
                let base_text = stripped[open + 1..].trim();
                if let Some(base) = XReg::parse(base_text) {
                    let offset_text = stripped[..open].trim();
                    let offset = if offset_text.is_empty() {
                        Operand::Imm(0)
                    } else {
                        Operand::parse(offset_text)?
                    };
                    match offset {
                        Operand::Imm(_) | Operand::Sym(_) | Operand::Lo(_) => {
                            return Ok(Operand::Mem {
                                offset: Box::new(offset),
                                base,
                            });
                        }
                        other => return Err(format!("invalid memory offset `{other:?}`")),
                    }
                }
            }
        }
        if let Some(rest) = text.strip_prefix("%hi(") {
            let inner = rest
                .strip_suffix(')')
                .filter(|s| !s.contains('(') && !s.contains(')'))
                .ok_or_else(|| format!("unterminated %hi in `{text}`"))?;
            return Ok(Operand::Hi(inner.trim().to_owned()));
        }
        if let Some(rest) = text.strip_prefix("%lo(") {
            let inner = rest
                .strip_suffix(')')
                .filter(|s| !s.contains('(') && !s.contains(')'))
                .ok_or_else(|| format!("unterminated %lo in `{text}`"))?;
            return Ok(Operand::Lo(inner.trim().to_owned()));
        }
        if let Some(value) = parse_int(text) {
            return Ok(Operand::Imm(value));
        }
        if is_symbol(text) {
            return Ok(Operand::Sym(text.to_owned()));
        }
        Err(format!("cannot parse operand `{text}`"))
    }
}

/// Parses a decimal, hex (`0x`), octal (`0o`) or binary (`0b`) integer,
/// with optional leading `-`.
#[must_use]
pub fn parse_int(text: &str) -> Option<i64> {
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else if let Some(oct) = body.strip_prefix("0o") {
        u64::from_str_radix(&oct.replace('_', ""), 8).ok()?
    } else {
        body.replace('_', "").parse::<u64>().ok()?
    };
    if neg {
        // Allow -(2^63).
        if magnitude > 1 << 63 {
            return None;
        }
        Some((magnitude as i64).wrapping_neg())
    } else {
        i64::try_from(magnitude).ok().or({
            // Permit large unsigned constants (e.g. 0xffff_ffff_ffff_ffff)
            // reinterpreted as two's-complement.
            Some(magnitude as i64)
        })
    }
}

fn is_symbol(text: &str) -> bool {
    let mut chars = text.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

/// Splits an operand list on commas that are outside parentheses.
#[must_use]
pub fn split_operands(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                out.push(current.trim().to_owned());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    let last = current.trim();
    if !last.is_empty() {
        out.push(last.to_owned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_registers() {
        assert_eq!(Operand::parse("a0").unwrap(), Operand::X(XReg::A0));
        assert_eq!(
            Operand::parse("x31").unwrap(),
            Operand::X(XReg::new(31).unwrap())
        );
        assert_eq!(
            Operand::parse("fa0").unwrap(),
            Operand::F(FReg::new(10).unwrap())
        );
        assert_eq!(
            Operand::parse("v7").unwrap(),
            Operand::V(VReg::new(7).unwrap())
        );
    }

    #[test]
    fn parses_immediates() {
        assert_eq!(Operand::parse("42").unwrap(), Operand::Imm(42));
        assert_eq!(Operand::parse("-16").unwrap(), Operand::Imm(-16));
        assert_eq!(Operand::parse("0x1f").unwrap(), Operand::Imm(31));
        assert_eq!(Operand::parse("0b101").unwrap(), Operand::Imm(5));
        assert_eq!(
            Operand::parse("0xffff_ffff_ffff_ffff").unwrap(),
            Operand::Imm(-1)
        );
    }

    #[test]
    fn parses_memory_operands() {
        let op = Operand::parse("8(sp)").unwrap();
        assert_eq!(
            op,
            Operand::Mem {
                offset: Box::new(Operand::Imm(8)),
                base: XReg::SP
            }
        );
        let op = Operand::parse("(a0)").unwrap();
        assert_eq!(
            op,
            Operand::Mem {
                offset: Box::new(Operand::Imm(0)),
                base: XReg::A0
            }
        );
        let op = Operand::parse("%lo(table)(t0)").unwrap();
        assert_eq!(
            op,
            Operand::Mem {
                offset: Box::new(Operand::Lo("table".to_owned())),
                base: XReg::parse("t0").unwrap()
            }
        );
    }

    #[test]
    fn parses_relocations_and_symbols() {
        assert_eq!(
            Operand::parse("%hi(table)").unwrap(),
            Operand::Hi("table".to_owned())
        );
        assert_eq!(
            Operand::parse("loop_start").unwrap(),
            Operand::Sym("loop_start".to_owned())
        );
        assert_eq!(Operand::parse("v0.t").unwrap(), Operand::VMask);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Operand::parse("").is_err());
        assert!(Operand::parse("12abc").is_err());
        assert!(Operand::parse("%hi(oops").is_err());
        assert!(Operand::parse("8(notareg)").is_err());
    }

    #[test]
    fn split_respects_parens() {
        assert_eq!(
            split_operands("a0, 8(sp), %lo(x)(t0)"),
            vec!["a0", "8(sp)", "%lo(x)(t0)"]
        );
        assert_eq!(split_operands(""), Vec::<String>::new());
        assert_eq!(split_operands("t0, a0, e64,m1,ta,ma").len(), 6);
    }

    #[test]
    fn int_edge_cases() {
        assert_eq!(parse_int("-9223372036854775808"), Some(i64::MIN));
        assert_eq!(parse_int("9223372036854775807"), Some(i64::MAX));
        assert_eq!(parse_int("0x8000000000000000"), Some(i64::MIN));
        assert_eq!(parse_int("1_000_000"), Some(1_000_000));
        assert_eq!(parse_int("abc"), None);
    }
}
