//! The two-pass assembler driver.
//!
//! Pass 1 parses statements, lays out sections and records symbol
//! addresses (instruction expansion lengths are fixed per statement, so
//! layout does not depend on label values). Pass 2 expands and encodes
//! with all symbols known.

use std::collections::BTreeMap;

use coyote_isa::encode::encode;

use crate::error::AsmError;
use crate::expand::{expand, expansion_len, Symbols};
use crate::operand::{parse_int, split_operands, Operand};
use crate::program::{Program, DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE};

/// Configurable assembler.
///
/// # Examples
///
/// ```
/// use coyote_asm::Assembler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Assembler::new().assemble(
///     "_start:
///         li a0, 42
///         ecall
///     ",
/// )?;
/// assert_eq!(program.entry(), program.text_base());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    text_base: u64,
    data_base: u64,
}

impl Default for Assembler {
    fn default() -> Self {
        Assembler::new()
    }
}

#[derive(Debug)]
enum Stmt {
    Inst {
        mnemonic: String,
        ops: Vec<Operand>,
    },
    /// `.word` (size 4) or `.dword`/`.quad` (size 8) values.
    Word {
        values: Vec<Operand>,
        size: u64,
    },
    /// `.double` floating-point literals.
    Double {
        values: Vec<f64>,
    },
    /// `.zero`/`.space`: `n` zero bytes.
    Zero {
        n: u64,
    },
    /// `.ascii`/`.asciz` string bytes.
    Bytes {
        bytes: Vec<u8>,
    },
    /// `.align`: align to `2^pow` bytes.
    Align {
        pow: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Debug)]
struct Placed {
    stmt: Stmt,
    section: Section,
    addr: u64,
    line: usize,
}

impl Assembler {
    /// Creates an assembler with the default section bases.
    #[must_use]
    pub fn new() -> Assembler {
        Assembler {
            text_base: DEFAULT_TEXT_BASE,
            data_base: DEFAULT_DATA_BASE,
        }
    }

    /// Sets the text-section base address.
    #[must_use]
    pub fn text_base(mut self, base: u64) -> Assembler {
        self.text_base = base;
        self
    }

    /// Sets the data-section base address.
    #[must_use]
    pub fn data_base(mut self, base: u64) -> Assembler {
        self.data_base = base;
        self
    }

    /// Assembles RISC-V source text into a [`Program`].
    ///
    /// Execution starts at the `_start` label when defined, otherwise at
    /// the beginning of the text section.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] pinpointing the offending source line for
    /// syntax errors, unknown mnemonics, undefined or duplicate symbols,
    /// and out-of-range immediates.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let mut symbols: Symbols = BTreeMap::new();
        let mut placed: Vec<Placed> = Vec::new();
        let mut section = Section::Text;
        let mut text_pc = self.text_base;
        let mut data_pc = self.data_base;

        // ---- pass 1: parse, lay out, collect symbols ----
        for (idx, raw_line) in source.lines().enumerate() {
            let line = idx + 1;
            let mut text = strip_comment(raw_line).trim();

            // Leading labels.
            while let Some(colon) = find_label_colon(text) {
                let name = text[..colon].trim();
                if !is_label_name(name) {
                    return Err(AsmError::new(line, format!("invalid label `{name}`")));
                }
                let addr = match section {
                    Section::Text => text_pc,
                    Section::Data => data_pc,
                };
                if symbols.insert(name.to_owned(), addr).is_some() {
                    return Err(AsmError::new(line, format!("duplicate symbol `{name}`")));
                }
                text = text[colon + 1..].trim();
            }
            if text.is_empty() {
                continue;
            }

            let (head, rest) = match text.find(char::is_whitespace) {
                Some(pos) => (&text[..pos], text[pos..].trim()),
                None => (text, ""),
            };

            if let Some(directive) = head.strip_prefix('.') {
                match directive {
                    "text" => section = Section::Text,
                    "data" => section = Section::Data,
                    "section" => {
                        section = match rest.trim_start_matches('.') {
                            s if s.starts_with("text") => Section::Text,
                            s if s.starts_with("data") || s.starts_with("bss") => Section::Data,
                            other => {
                                return Err(AsmError::new(
                                    line,
                                    format!("unsupported section `{other}`"),
                                ))
                            }
                        };
                    }
                    "global" | "globl" => {} // all symbols are global already
                    "equ" | "set" => {
                        let parts = split_operands(rest);
                        if parts.len() != 2 {
                            return Err(AsmError::new(line, ".equ takes `name, value`"));
                        }
                        let value = parse_int(&parts[1])
                            .or_else(|| symbols.get(parts[1].as_str()).map(|&v| v as i64))
                            .ok_or_else(|| {
                                AsmError::new(line, format!("bad .equ value `{}`", parts[1]))
                            })?;
                        if symbols.insert(parts[0].clone(), value as u64).is_some() {
                            return Err(AsmError::new(
                                line,
                                format!("duplicate symbol `{}`", parts[0]),
                            ));
                        }
                    }
                    "align" => {
                        let pow = parse_int(rest.trim())
                            .and_then(|v| u32::try_from(v).ok())
                            .filter(|&v| v <= 16)
                            .ok_or_else(|| AsmError::new(line, "bad .align argument"))?;
                        let pc = match section {
                            Section::Text => &mut text_pc,
                            Section::Data => &mut data_pc,
                        };
                        let addr = *pc;
                        *pc = align_up(*pc, 1 << pow);
                        placed.push(Placed {
                            stmt: Stmt::Align { pow },
                            section,
                            addr,
                            line,
                        });
                    }
                    "word" | "dword" | "quad" => {
                        if section != Section::Data {
                            return Err(AsmError::new(line, "data directives belong in .data"));
                        }
                        let size = if directive == "word" { 4 } else { 8 };
                        let values = split_operands(rest)
                            .iter()
                            .map(|t| Operand::parse(t))
                            .collect::<Result<Vec<_>, _>>()
                            .map_err(|e| AsmError::new(line, e))?;
                        data_pc = align_up(data_pc, size);
                        let addr = data_pc;
                        data_pc += size * values.len() as u64;
                        placed.push(Placed {
                            stmt: Stmt::Word { values, size },
                            section: Section::Data,
                            addr,
                            line,
                        });
                    }
                    "double" => {
                        if section != Section::Data {
                            return Err(AsmError::new(line, "data directives belong in .data"));
                        }
                        let values = split_operands(rest)
                            .iter()
                            .map(|t| {
                                t.parse::<f64>().map_err(|_| {
                                    AsmError::new(line, format!("bad double literal `{t}`"))
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        data_pc = align_up(data_pc, 8);
                        let addr = data_pc;
                        data_pc += 8 * values.len() as u64;
                        placed.push(Placed {
                            stmt: Stmt::Double { values },
                            section: Section::Data,
                            addr,
                            line,
                        });
                    }
                    "ascii" | "asciz" | "string" => {
                        if section != Section::Data {
                            return Err(AsmError::new(line, "data directives belong in .data"));
                        }
                        let mut bytes =
                            parse_string_literal(rest).map_err(|e| AsmError::new(line, e))?;
                        if directive != "ascii" {
                            bytes.push(0); // .asciz / .string are NUL-terminated
                        }
                        let addr = data_pc;
                        data_pc += bytes.len() as u64;
                        placed.push(Placed {
                            stmt: Stmt::Bytes { bytes },
                            section: Section::Data,
                            addr,
                            line,
                        });
                    }
                    "zero" | "space" | "skip" => {
                        if section != Section::Data {
                            return Err(AsmError::new(line, "data directives belong in .data"));
                        }
                        let n = parse_int(rest.trim())
                            .or_else(|| symbols.get(rest.trim()).map(|&v| v as i64))
                            .and_then(|v| u64::try_from(v).ok())
                            .ok_or_else(|| AsmError::new(line, "bad .zero argument"))?;
                        let addr = data_pc;
                        data_pc += n;
                        placed.push(Placed {
                            stmt: Stmt::Zero { n },
                            section: Section::Data,
                            addr,
                            line,
                        });
                    }
                    other => {
                        return Err(AsmError::new(line, format!("unknown directive `.{other}`")))
                    }
                }
                continue;
            }

            // An instruction.
            if section != Section::Data {
                let ops = split_operands(rest)
                    .iter()
                    .map(|t| Operand::parse(t))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| AsmError::new(line, e))?;
                let len =
                    expansion_len(head, &ops, &symbols).map_err(|e| AsmError::new(line, e))? as u64;
                placed.push(Placed {
                    stmt: Stmt::Inst {
                        mnemonic: head.to_owned(),
                        ops,
                    },
                    section: Section::Text,
                    addr: text_pc,
                    line,
                });
                text_pc += 4 * len;
            } else {
                return Err(AsmError::new(line, "instructions belong in .text"));
            }
        }

        // ---- pass 2: expand and encode ----
        let mut text: Vec<u32> = Vec::new();
        let mut data: Vec<u8> = Vec::new();
        for item in &placed {
            match &item.stmt {
                Stmt::Inst { mnemonic, ops } => {
                    debug_assert_eq!(item.addr, self.text_base + 4 * text.len() as u64);
                    let insts = expand(mnemonic, ops, item.addr, &symbols)
                        .map_err(|e| AsmError::new(item.line, e))?;
                    for inst in insts {
                        let word =
                            encode(&inst).map_err(|e| AsmError::new(item.line, e.to_string()))?;
                        text.push(word);
                    }
                }
                Stmt::Align { pow } => {
                    let target = align_up(item.addr, 1u64 << pow);
                    match item.section {
                        Section::Data => pad_data(&mut data, self.data_base, target),
                        Section::Text => {
                            while self.text_base + 4 * (text.len() as u64) < target {
                                text.push(0x0000_0013); // nop
                            }
                        }
                    }
                }
                Stmt::Word { values, size } => {
                    pad_data(&mut data, self.data_base, item.addr);
                    for value in values {
                        let v = match value {
                            Operand::Imm(v) => *v,
                            Operand::Sym(name) => *symbols.get(name).ok_or_else(|| {
                                AsmError::new(item.line, format!("undefined symbol `{name}`"))
                            })? as i64,
                            other => {
                                return Err(AsmError::new(
                                    item.line,
                                    format!("bad data value {other:?}"),
                                ))
                            }
                        };
                        data.extend_from_slice(&v.to_le_bytes()[..*size as usize]);
                    }
                }
                Stmt::Double { values } => {
                    pad_data(&mut data, self.data_base, item.addr);
                    for v in values {
                        data.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Stmt::Zero { n } => {
                    pad_data(&mut data, self.data_base, item.addr);
                    data.resize(data.len() + *n as usize, 0);
                }
                Stmt::Bytes { bytes } => {
                    pad_data(&mut data, self.data_base, item.addr);
                    data.extend_from_slice(bytes);
                }
            }
        }

        let entry = symbols.get("_start").copied().unwrap_or(self.text_base);
        Ok(Program::from_parts(
            self.text_base,
            text,
            self.data_base,
            data,
            entry,
            symbols,
        ))
    }
}

fn pad_data(data: &mut Vec<u8>, base: u64, target_addr: u64) {
    let want = (target_addr - base) as usize;
    if data.len() < want {
        data.resize(want, 0);
    }
}

fn align_up(value: u64, align: u64) -> u64 {
    value.div_ceil(align) * align
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    let mut prev_slash = false;
    for (i, c) in line.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            prev_slash = false;
            continue;
        }
        match c {
            '"' => in_string = true,
            '#' | ';' => return &line[..i],
            '/' if prev_slash => return &line[..i - 1],
            _ => {}
        }
        prev_slash = c == '/';
    }
    line
}

/// Parses a double-quoted string literal with `\n`, `\t`, `\0`,
/// `\\` and `\"` escapes.
fn parse_string_literal(text: &str) -> Result<Vec<u8>, String> {
    let inner = text
        .trim()
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{text}`"))?;
    let mut bytes = Vec::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('n') => bytes.push(b'\n'),
            Some('t') => bytes.push(b'\t'),
            Some('0') => bytes.push(0),
            Some('\\') => bytes.push(b'\\'),
            Some('"') => bytes.push(b'"'),
            other => return Err(format!("unsupported escape `\\{other:?}`")),
        }
    }
    Ok(bytes)
}

/// Finds the colon ending a leading label, ignoring colons elsewhere.
fn find_label_colon(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    // Only treat it as a label if everything before it is a name.
    if is_label_name(text[..colon].trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

/// Assembles with the default configuration.
///
/// # Errors
///
/// See [`Assembler::assemble`].
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_isa::decode::decode;
    use coyote_isa::inst::{AluOp, Inst};
    use coyote_isa::XReg;

    #[test]
    fn minimal_program() {
        let p = assemble("_start:\n  li a0, 7\n  ecall\n").unwrap();
        assert_eq!(p.text().len(), 2);
        assert_eq!(p.entry(), p.text_base());
        assert_eq!(
            decode(p.text()[0]).unwrap(),
            Inst::OpImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: 7
            }
        );
        assert_eq!(decode(p.text()[1]).unwrap(), Inst::Ecall);
    }

    #[test]
    fn forward_and_backward_labels() {
        let p = assemble(
            "_start:
                j end
             loop:
                addi a0, a0, 1
                j loop
             end:
                ecall",
        )
        .unwrap();
        // `j end` jumps forward over two instructions.
        let Inst::Jal { offset, .. } = decode(p.text()[0]).unwrap() else {
            panic!("expected jal");
        };
        assert_eq!(offset, 12);
        // `j loop` jumps back one instruction.
        let Inst::Jal { offset, .. } = decode(p.text()[2]).unwrap() else {
            panic!("expected jal");
        };
        assert_eq!(offset, -4);
    }

    #[test]
    fn data_section_layout() {
        let p = assemble(
            ".data
             values:
                .double 1.5, 2.5
             count:
                .dword 2
             table:
                .word 1, 2, 3
             buffer:
                .zero 16
             .text
             _start:
                la a0, values
                ecall",
        )
        .unwrap();
        let base = p.data_base();
        assert_eq!(p.symbol("values"), Some(base));
        assert_eq!(p.symbol("count"), Some(base + 16));
        assert_eq!(p.symbol("table"), Some(base + 24));
        assert_eq!(p.symbol("buffer"), Some(base + 36));
        assert_eq!(&p.data()[0..8], &1.5f64.to_le_bytes());
        assert_eq!(&p.data()[8..16], &2.5f64.to_le_bytes());
        assert_eq!(&p.data()[16..24], &2u64.to_le_bytes());
        assert_eq!(&p.data()[24..28], &1u32.to_le_bytes());
        assert_eq!(p.data().len(), 36 + 16);
    }

    #[test]
    fn word_alignment_after_odd_zero() {
        let p = assemble(
            ".data
                .zero 3
             aligned:
                .dword 99",
        )
        .unwrap();
        // .dword aligns to 8; label recorded before alignment points at
        // the pre-padding address, so use the data contents to verify.
        assert_eq!(&p.data()[8..16], &99u64.to_le_bytes());
        assert_eq!(p.data()[..8], [0u8; 8]);
    }

    #[test]
    fn equ_constants_usable_as_immediates() {
        let p = assemble(
            ".equ N, 64
             _start:
                li a0, N
                addi a1, zero, N
                ecall",
        )
        .unwrap();
        let Inst::OpImm { imm, .. } = decode(p.text()[0]).unwrap() else {
            panic!();
        };
        assert_eq!(imm, 64);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "# leading comment
             _start:           // trailing comment
                nop            ; semicolon comment

                ecall",
        )
        .unwrap();
        assert_eq!(p.text().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus a0\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = assemble(".data\n.word 1\n.text\nx:\nx:\n").unwrap_err();
        assert_eq!(err.line, 5);
        let err = assemble("lw a0, nowhere_sym(t0)\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn ascii_directives_emit_bytes() {
        let p = assemble(
            ".data
             msg: .asciz \"Hi\\n\"
             raw: .ascii \"a#b\"   # comment after string
             after: .dword 1",
        )
        .unwrap();
        assert_eq!(&p.data()[0..4], b"Hi\n\0");
        assert_eq!(&p.data()[4..7], b"a#b");
        // .dword aligns to 8 after the 7 string bytes.
        assert_eq!(p.symbol("after"), Some(p.data_base() + 7));
        assert_eq!(&p.data()[8..16], &1u64.to_le_bytes());
    }

    #[test]
    fn bad_string_literal_is_an_error() {
        assert!(assemble(
            ".data
 s: .ascii unquoted"
        )
        .is_err());
        assert!(assemble(
            ".data
 s: .ascii \"bad\\q\""
        )
        .is_err());
    }

    #[test]
    fn duplicate_label_rejected() {
        assert!(assemble("a:\na:\n nop").is_err());
    }

    #[test]
    fn instructions_in_data_rejected() {
        let err = assemble(".data\n add a0, a1, a2\n").unwrap_err();
        assert!(err.message.contains(".text"));
    }

    #[test]
    fn data_in_text_rejected() {
        assert!(assemble(".word 1").is_err());
    }

    #[test]
    fn align_in_text_pads_with_nops() {
        let p = assemble("_start:\n nop\n .align 4\nafter:\n ecall").unwrap();
        assert_eq!(p.symbol("after"), Some(p.text_base() + 16));
        assert_eq!(p.text().len(), 5);
        for w in &p.text()[1..4] {
            assert_eq!(*w, 0x0000_0013);
        }
    }

    #[test]
    fn custom_bases() {
        let p = Assembler::new()
            .text_base(0x1000)
            .data_base(0x2000)
            .assemble(".data\nv: .dword 1\n.text\n_start: la a0, v\n ecall")
            .unwrap();
        assert_eq!(p.text_base(), 0x1000);
        assert_eq!(p.symbol("v"), Some(0x2000));
    }

    #[test]
    fn dword_of_label_address() {
        let p = assemble(
            ".data
             ptr:
                .dword target
             target:
                .dword 42",
        )
        .unwrap();
        let ptr_bytes: [u8; 8] = p.data()[0..8].try_into().unwrap();
        assert_eq!(u64::from_le_bytes(ptr_bytes), p.symbol("target").unwrap());
    }
}
