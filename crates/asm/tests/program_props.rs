//! Structural property tests for the assembler:
//!
//! * branch/jump offsets computed through the two-pass layout always
//!   land exactly on the labelled instruction, for random control-flow
//!   graphs;
//! * arbitrary garbage input produces an error (never a panic);
//! * `.equ`-driven layouts match direct numeric layouts.

use coyote_asm::Assembler;
use coyote_isa::decode::decode;
use coyote_isa::inst::Inst;
use proptest::prelude::*;

/// A random program of `blocks` labelled blocks, each with `pad`
/// fixed-length filler instructions followed by a control transfer to a
/// random block.
#[derive(Debug, Clone)]
struct Cfg {
    /// For each block: (filler instruction count, target block, kind).
    blocks: Vec<(usize, usize, Transfer)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Transfer {
    Jump,
    BranchEq,
    BranchLt,
}

fn cfg_strategy() -> impl Strategy<Value = Cfg> {
    (2usize..10)
        .prop_flat_map(|n| {
            prop::collection::vec(
                (
                    0usize..6,
                    0..n,
                    prop_oneof![
                        Just(Transfer::Jump),
                        Just(Transfer::BranchEq),
                        Just(Transfer::BranchLt)
                    ],
                ),
                n,
            )
        })
        .prop_map(|blocks| Cfg { blocks })
}

fn render(cfg: &Cfg) -> String {
    let mut src = String::from("_start:\n");
    for (index, (pad, target, kind)) in cfg.blocks.iter().enumerate() {
        src.push_str(&format!("block{index}:\n"));
        for _ in 0..*pad {
            src.push_str("    addi t0, t0, 1\n");
        }
        match kind {
            Transfer::Jump => src.push_str(&format!("    j block{target}\n")),
            Transfer::BranchEq => src.push_str(&format!("    beq a0, a1, block{target}\n")),
            Transfer::BranchLt => src.push_str(&format!("    blt a0, a1, block{target}\n")),
        }
    }
    src.push_str("    li a0, 0\n    li a7, 93\n    ecall\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// Every control transfer's decoded PC-relative offset points
    /// exactly at the labelled block.
    #[test]
    fn control_transfers_hit_their_labels(cfg in cfg_strategy()) {
        let src = render(&cfg);
        let program = Assembler::new().assemble(&src).expect("valid program");
        // Walk the text; for each block in order, skip `pad` fillers and
        // check the transfer.
        let base = program.text_base();
        let mut pc = base;
        for (index, (pad, target, kind)) in cfg.blocks.iter().enumerate() {
            let block_addr = program.symbol(&format!("block{index}")).expect("label");
            prop_assert_eq!(block_addr, pc, "block {} address", index);
            pc += 4 * *pad as u64;
            let word = program.text()[((pc - base) / 4) as usize];
            let inst = decode(word).expect("decodes");
            let target_addr = program.symbol(&format!("block{target}")).expect("target");
            match (kind, inst) {
                (Transfer::Jump, Inst::Jal { offset, .. }) => {
                    prop_assert_eq!(pc.wrapping_add(offset as i64 as u64), target_addr);
                }
                (Transfer::BranchEq | Transfer::BranchLt, Inst::Branch { offset, .. }) => {
                    prop_assert_eq!(pc.wrapping_add(offset as i64 as u64), target_addr);
                }
                (k, other) => prop_assert!(false, "expected {k:?}, decoded {other:?}"),
            }
            pc += 4;
        }
    }

    /// The assembler returns errors, never panics, on arbitrary text.
    #[test]
    fn never_panics_on_garbage(source in "\\PC{0,400}") {
        let _ = Assembler::new().assemble(&source);
    }

    /// Lines of almost-plausible tokens are handled gracefully too.
    #[test]
    fn never_panics_on_token_soup(
        lines in prop::collection::vec(
            prop_oneof![
                Just(".data".to_owned()),
                Just(".text".to_owned()),
                Just("label:".to_owned()),
                Just("add a0, a1".to_owned()),       // missing operand
                Just("ld a0, (nope)".to_owned()),    // bad base
                Just("vsetvli t0, a0, e99".to_owned()),
                Just(".word".to_owned()),
                Just(".align -1".to_owned()),
                Just("j nowhere".to_owned()),
                Just("addi t0, t0, 99999".to_owned()),
                Just("nop".to_owned()),
            ],
            0..20,
        )
    ) {
        let source = lines.join("\n");
        let _ = Assembler::new().assemble(&source);
    }
}

#[test]
fn equ_and_numeric_layouts_agree() {
    let with_equ = Assembler::new()
        .assemble(
            ".equ SIZE, 128
             .data
             buf: .zero SIZE
             tail: .dword 1
             .text
             _start:
                li t0, SIZE
                ecall",
        )
        .unwrap();
    let numeric = Assembler::new()
        .assemble(
            ".data
             buf: .zero 128
             tail: .dword 1
             .text
             _start:
                li t0, 128
                ecall",
        )
        .unwrap();
    assert_eq!(with_equ.text(), numeric.text());
    assert_eq!(with_equ.symbol("tail"), numeric.symbol("tail"));
}
