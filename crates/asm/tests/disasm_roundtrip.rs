//! Property test: for every decodable instruction word, the
//! disassembled text re-assembles to the same instruction.
//!
//! This closes the loop between the three ISA representations
//! (word ↔ [`coyote_isa::Inst`] ↔ text) without duplicating the
//! instruction-space strategy: random words are filtered through the
//! decoder.

use coyote_asm::Assembler;
use coyote_isa::decode::decode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]
    #[test]
    fn disassembly_reassembles(word in any::<u32>()) {
        let Ok(inst) = decode(word) else {
            return Ok(());
        };
        let text = format!("_start:\n {inst}\n");
        let program = Assembler::new()
            .assemble(&text)
            .unwrap_or_else(|e| panic!("assembling `{inst}` ({word:#010x}): {e}"));
        prop_assert_eq!(program.text().len(), 1, "`{}` expanded to multiple insts", inst);
        let back = decode(program.text()[0]).expect("assembled word decodes");
        prop_assert_eq!(back, inst, "through text `{}`", inst);
    }
}

#[test]
fn known_tricky_disassemblies_reassemble() {
    // Hand-picked encodings that exercise corner syntax.
    for word in [
        0x0010_0093u32, // addi ra, zero, 1
        0x0ff0_000f,    // fence
        0xf140_2573,    // csrr a0, mhartid (csrrs)
        0x1234_5537,    // lui a0, 0x12345
        0x8000_0537,    // lui a0, 0x80000 (negative upper immediate)
    ] {
        let inst = decode(word).unwrap();
        let text = format!("_start:\n {inst}\n");
        let program = Assembler::new().assemble(&text).unwrap();
        assert_eq!(decode(program.text()[0]).unwrap(), inst, "{inst}");
    }
}
