//! Predecoded micro-op form of an instruction stream.
//!
//! Decoding and recomputing register use/def sets on every retirement
//! dominates the simulator's hot loop. [`DecodedInst`] is the micro-op
//! the timing layer dispatches on instead: the decoded [`Inst`] (whose
//! enum discriminant selects the exec function and whose fields carry
//! the pre-resolved register indices and immediates) together with the
//! instruction's cached use/def [`RegSet`]s. [`predecode`] builds the
//! dense table for a text segment once at program load.
//!
//! Vector instructions are the one wrinkle: their register *groups*
//! depend on the hart's live `LMUL`, so their sets cannot be cached at
//! load time. Such entries are marked [`DecodedInst::lmul_sensitive`]
//! and the stepper recomputes their sets with [`uses_with_group`] /
//! [`defs_with_group`] under the current group length.

use crate::inst::{CsrSrc, FpCvtOp, Inst, VAddrMode, VFScalar, VFpOp, VMulOp, VScalar};
use crate::reg::{FReg, VReg, XReg};

/// A set of registers, used for hazard detection (bit per register).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegSet {
    /// Integer registers (bit 0 = `x0`, always clear).
    pub x: u32,
    /// FP registers.
    pub f: u32,
    /// Vector registers.
    pub v: u32,
}

impl RegSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> RegSet {
        RegSet::default()
    }

    /// Adds an integer register (`x0` is ignored: it can never be
    /// pending).
    pub fn add_x(&mut self, reg: XReg) {
        if reg != XReg::ZERO {
            self.x |= 1 << reg.index();
        }
    }

    /// Adds an FP register.
    pub fn add_f(&mut self, reg: FReg) {
        self.f |= 1 << reg.index();
    }

    /// Adds a vector register group of `len` registers starting at
    /// `reg` (wrapping masked off at `v31`).
    pub fn add_v_group(&mut self, reg: VReg, len: u8) {
        for i in 0..u32::from(len) {
            let idx = reg.index() as u32 + i;
            if idx < 32 {
                self.v |= 1 << idx;
            }
        }
    }

    /// Whether the two sets intersect.
    #[must_use]
    pub fn intersects(&self, other: &RegSet) -> bool {
        (self.x & other.x) | (self.f & other.f) | (self.v & other.v) != 0
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x == 0 && self.f == 0 && self.v == 0
    }

    /// Removes every register in `other` from `self`.
    pub fn remove(&mut self, other: &RegSet) {
        self.x &= !other.x;
        self.f &= !other.f;
        self.v &= !other.v;
    }

    /// Unions `other` into `self`.
    pub fn insert_all(&mut self, other: &RegSet) {
        self.x |= other.x;
        self.f |= other.f;
        self.v |= other.v;
    }
}

/// Registers read by `inst` under vector register-group length `g`
/// (for RAW-hazard detection). `g` only matters for vector operands;
/// scalar instructions produce the same set for every `g`.
#[must_use]
pub fn uses_with_group(inst: &Inst, g: u8) -> RegSet {
    let mut set = RegSet::new();
    match *inst {
        Inst::Lui { .. } | Inst::Fence | Inst::Ecall | Inst::Ebreak | Inst::Auipc { .. } => {}
        Inst::Jal { .. } => {}
        Inst::Jalr { rs1, .. } => set.add_x(rs1),
        Inst::Branch { rs1, rs2, .. } => {
            set.add_x(rs1);
            set.add_x(rs2);
        }
        Inst::Load { rs1, .. } => set.add_x(rs1),
        Inst::Store { rs2, rs1, .. } => {
            set.add_x(rs1);
            set.add_x(rs2);
        }
        Inst::OpImm { rs1, .. } | Inst::OpImm32 { rs1, .. } => set.add_x(rs1),
        Inst::Op { rs1, rs2, .. } | Inst::Op32 { rs1, rs2, .. } => {
            set.add_x(rs1);
            set.add_x(rs2);
        }
        Inst::Csr { src, .. } => {
            if let CsrSrc::Reg(rs1) = src {
                set.add_x(rs1);
            }
        }
        Inst::Amo { rs1, rs2, .. } => {
            set.add_x(rs1);
            set.add_x(rs2);
        }
        Inst::Fld { rs1, .. } => set.add_x(rs1),
        Inst::Fsd { rs2, rs1, .. } => {
            set.add_x(rs1);
            set.add_f(rs2);
        }
        Inst::FpOp { rs1, rs2, .. } => {
            set.add_f(rs1);
            set.add_f(rs2);
        }
        Inst::FpFma { rs1, rs2, rs3, .. } => {
            set.add_f(rs1);
            set.add_f(rs2);
            set.add_f(rs3);
        }
        Inst::FpCmp { rs1, rs2, .. } => {
            set.add_f(rs1);
            set.add_f(rs2);
        }
        Inst::FpCvt { op, rs1, .. } => match op {
            FpCvtOp::DFromL | FpCvtOp::DFromLu | FpCvtOp::DFromW => {
                set.add_x(XReg::new(rs1).unwrap_or(XReg::ZERO));
            }
            _ => set.add_f(FReg::new(rs1).unwrap_or_default()),
        },
        Inst::FmvXD { rs1, .. } => set.add_f(rs1),
        Inst::FmvDX { rs1, .. } => set.add_x(rs1),
        Inst::Vsetvli { rs1, .. } => set.add_x(rs1),
        Inst::Vsetivli { .. } => {}
        Inst::Vsetvl { rs1, rs2, .. } => {
            set.add_x(rs1);
            set.add_x(rs2);
        }
        Inst::VLoad { rs1, mode, vm, .. } => {
            set.add_x(rs1);
            add_mode_uses(&mut set, mode, g);
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VStore {
            vs3, rs1, mode, vm, ..
        } => {
            set.add_x(rs1);
            set.add_v_group(vs3, g);
            add_mode_uses(&mut set, mode, g);
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VIntOp { vs2, src, vm, .. } => {
            set.add_v_group(vs2, g);
            match src {
                VScalar::Vector(v1) => set.add_v_group(v1, g),
                VScalar::Xreg(r1) => set.add_x(r1),
            }
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VIntOpImm { vs2, vm, .. } => {
            set.add_v_group(vs2, g);
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VMulOp {
            op,
            vd,
            vs2,
            src,
            vm,
            ..
        } => {
            set.add_v_group(vs2, g);
            match src {
                VScalar::Vector(v1) => set.add_v_group(v1, g),
                VScalar::Xreg(r1) => set.add_x(r1),
            }
            if op == VMulOp::Macc {
                set.add_v_group(vd, g); // accumulator is also a source
            }
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VFpOp {
            op,
            vd,
            vs2,
            src,
            vm,
            ..
        } => {
            set.add_v_group(vs2, g);
            match src {
                VFScalar::Vector(v1) => set.add_v_group(v1, g),
                VFScalar::Freg(r1) => set.add_f(r1),
            }
            if op == VFpOp::Macc {
                set.add_v_group(vd, g);
            }
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VRedSum { vs2, vs1, vm, .. } | Inst::VFRedSum { vs2, vs1, vm, .. } => {
            set.add_v_group(vs2, g);
            set.add_v_group(vs1, 1);
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VMvVV { vs1, .. } => set.add_v_group(vs1, g),
        Inst::VMvVX { rs1, .. } | Inst::VMvSX { rs1, .. } => set.add_x(rs1),
        Inst::VMvVI { .. } => {}
        Inst::VFMvVF { rs1, .. } | Inst::VFMvSF { rs1, .. } => set.add_f(rs1),
        Inst::VMvXS { vs2, .. } | Inst::VFMvFS { vs2, .. } => set.add_v_group(vs2, 1),
        Inst::Vid { vm, .. } => {
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VMaskCmp { vs2, src, vm, .. } => {
            set.add_v_group(vs2, g);
            match src {
                VScalar::Vector(v1) => set.add_v_group(v1, g),
                VScalar::Xreg(r1) => set.add_x(r1),
            }
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VMaskCmpImm { vs2, vm, .. } => {
            set.add_v_group(vs2, g);
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VFMaskCmp { vs2, src, vm, .. } => {
            set.add_v_group(vs2, g);
            match src {
                VFScalar::Vector(v1) => set.add_v_group(v1, g),
                VFScalar::Freg(r1) => set.add_f(r1),
            }
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
        Inst::VMaskLogical { vs2, vs1, .. } => {
            set.add_v_group(vs2, 1);
            set.add_v_group(vs1, 1);
        }
        Inst::VMerge { vs2, src, .. } => {
            set.add_v_group(vs2, g);
            match src {
                VScalar::Vector(v1) => set.add_v_group(v1, g),
                VScalar::Xreg(r1) => set.add_x(r1),
            }
            set.add_v_group(VReg::V0, 1);
        }
        Inst::VMergeImm { vs2, .. } => {
            set.add_v_group(vs2, g);
            set.add_v_group(VReg::V0, 1);
        }
        Inst::VFMerge { vs2, rs1, .. } => {
            set.add_v_group(vs2, g);
            set.add_f(rs1);
            set.add_v_group(VReg::V0, 1);
        }
        Inst::Vcpop { vs2, vm, .. } | Inst::Vfirst { vs2, vm, .. } => {
            set.add_v_group(vs2, 1);
            if !vm {
                set.add_v_group(VReg::V0, 1);
            }
        }
    }
    set
}

fn add_mode_uses(set: &mut RegSet, mode: VAddrMode, g: u8) {
    match mode {
        VAddrMode::Unit => {}
        VAddrMode::Strided(rs2) => set.add_x(rs2),
        VAddrMode::Indexed(vs2) => set.add_v_group(vs2, g),
    }
}

/// Registers written by `inst` under vector register-group length `g`
/// (for WAW-hazard detection against pending fills).
#[must_use]
pub fn defs_with_group(inst: &Inst, g: u8) -> RegSet {
    let mut set = RegSet::new();
    match *inst {
        Inst::Lui { rd, .. }
        | Inst::Auipc { rd, .. }
        | Inst::Jal { rd, .. }
        | Inst::Jalr { rd, .. }
        | Inst::Load { rd, .. }
        | Inst::OpImm { rd, .. }
        | Inst::Op { rd, .. }
        | Inst::OpImm32 { rd, .. }
        | Inst::Op32 { rd, .. }
        | Inst::Csr { rd, .. }
        | Inst::Amo { rd, .. }
        | Inst::FpCmp { rd, .. }
        | Inst::FmvXD { rd, .. }
        | Inst::Vsetvli { rd, .. }
        | Inst::Vsetivli { rd, .. }
        | Inst::Vsetvl { rd, .. }
        | Inst::VMvXS { rd, .. } => set.add_x(rd),
        Inst::Fld { rd, .. } | Inst::FmvDX { rd, .. } | Inst::VFMvFS { rd, .. } => set.add_f(rd),
        Inst::FpOp { rd, .. } | Inst::FpFma { rd, .. } => set.add_f(rd),
        Inst::FpCvt { op, rd, .. } => match op {
            FpCvtOp::DFromL | FpCvtOp::DFromLu | FpCvtOp::DFromW => {
                set.add_f(FReg::new(rd).unwrap_or_default());
            }
            _ => set.add_x(XReg::new(rd).unwrap_or(XReg::ZERO)),
        },
        Inst::VLoad { vd, .. } => set.add_v_group(vd, g),
        Inst::VIntOp { vd, .. }
        | Inst::VIntOpImm { vd, .. }
        | Inst::VMulOp { vd, .. }
        | Inst::VFpOp { vd, .. }
        | Inst::VMvVV { vd, .. }
        | Inst::VMvVX { vd, .. }
        | Inst::VMvVI { vd, .. }
        | Inst::VFMvVF { vd, .. } => set.add_v_group(vd, g),
        Inst::VRedSum { vd, .. }
        | Inst::VFRedSum { vd, .. }
        | Inst::VMvSX { vd, .. }
        | Inst::VFMvSF { vd, .. } => set.add_v_group(vd, 1),
        Inst::Vid { vd, .. } => set.add_v_group(vd, g),
        Inst::VMaskCmp { vd, .. }
        | Inst::VMaskCmpImm { vd, .. }
        | Inst::VFMaskCmp { vd, .. }
        | Inst::VMaskLogical { vd, .. } => set.add_v_group(vd, 1),
        Inst::VMerge { vd, .. } | Inst::VMergeImm { vd, .. } | Inst::VFMerge { vd, .. } => {
            set.add_v_group(vd, g);
        }
        Inst::Vcpop { rd, .. } | Inst::Vfirst { rd, .. } => set.add_x(rd),
        Inst::Branch { .. }
        | Inst::Store { .. }
        | Inst::Fsd { .. }
        | Inst::VStore { .. }
        | Inst::Fence
        | Inst::Ecall
        | Inst::Ebreak => {}
    }
    set
}

/// One predecoded micro-op: the decoded instruction plus everything the
/// per-cycle stepper would otherwise recompute on every retirement.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInst {
    /// The decoded instruction. Its enum discriminant is the exec-fn
    /// selector and its fields carry the pre-resolved register indices
    /// and immediate.
    pub inst: Inst,
    /// Cached use set, valid whenever `lmul_sensitive` is false.
    pub uses: RegSet,
    /// Cached def set, valid whenever `lmul_sensitive` is false.
    pub defs: RegSet,
    /// Whether the use/def sets depend on the hart's live `LMUL` (the
    /// vector register-group length). When set, the stepper must
    /// recompute them with [`uses_with_group`]/[`defs_with_group`].
    pub lmul_sensitive: bool,
    /// Whether the instruction counts toward the vector-retired stat.
    pub vector: bool,
}

impl DecodedInst {
    /// Builds the micro-op for a decoded instruction.
    #[must_use]
    pub fn from_inst(inst: Inst) -> DecodedInst {
        let vector = inst.is_vector();
        DecodedInst {
            uses: uses_with_group(&inst, 1),
            defs: defs_with_group(&inst, 1),
            // Group lengths only vary for vector operands, so every
            // non-vector instruction's sets are LMUL-independent.
            lmul_sensitive: vector,
            vector,
            inst,
        }
    }

    /// Decodes one word into a micro-op (the slow path for PCs outside
    /// the predecoded text segment).
    #[must_use]
    pub fn from_word(word: u32) -> Option<DecodedInst> {
        crate::decode::decode(word).ok().map(DecodedInst::from_inst)
    }
}

/// Predecode volume counters, for the host profiler's predecode phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Text-segment words examined.
    pub words: u64,
    /// Words that decoded into a micro-op table entry.
    pub decoded: u64,
    /// Words left as `None` holes (illegal-instruction faults if ever
    /// reached).
    pub holes: u64,
}

/// Predecodes a text segment into the dense micro-op table the stepper
/// indexes by `(pc - text_base) / 4`. Words that do not decode leave a
/// `None` hole (reaching one at run time is an illegal-instruction
/// fault).
#[must_use]
pub fn predecode(words: &[u32]) -> Vec<Option<DecodedInst>> {
    predecode_with_stats(words).0
}

/// [`predecode`] plus volume counters: how many words were examined
/// and how many decoded. The table is computed identically.
#[must_use]
pub fn predecode_with_stats(words: &[u32]) -> (Vec<Option<DecodedInst>>, PredecodeStats) {
    let table: Vec<Option<DecodedInst>> =
        words.iter().map(|&w| DecodedInst::from_word(w)).collect();
    let decoded = table.iter().filter(|e| e.is_some()).count() as u64;
    let stats = PredecodeStats {
        words: words.len() as u64,
        decoded,
        holes: words.len() as u64 - decoded,
    };
    (table, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sets_are_group_independent() {
        let inst = crate::decode::decode(0x0010_0093).unwrap(); // addi ra, zero, 1
        for g in 1..=8 {
            assert_eq!(uses_with_group(&inst, g), uses_with_group(&inst, 1));
            assert_eq!(defs_with_group(&inst, g), defs_with_group(&inst, 1));
        }
        let d = DecodedInst::from_inst(inst);
        assert!(!d.lmul_sensitive);
        assert!(!d.vector);
        assert_eq!(d.defs.x, 1 << 1); // ra
    }

    #[test]
    fn undecodable_word_leaves_hole() {
        let table = predecode(&[0x0010_0093, 0xffff_ffff]);
        assert!(table[0].is_some());
        assert!(table[1].is_none());
    }
}
