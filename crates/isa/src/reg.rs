//! Register file newtypes for the three RISC-V register classes.
//!
//! The simulator manipulates integer ([`XReg`]), floating-point ([`FReg`])
//! and vector ([`VReg`]) register indices constantly; newtypes keep the
//! three spaces statically distinct (a scoreboard entry for `x5` can never
//! be confused with one for `f5` or `v5`).

use std::fmt;

/// Error returned when constructing a register from an out-of-range index.
///
/// RISC-V register files have exactly 32 architectural registers, so any
/// index above 31 is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRegError {
    /// The rejected index.
    pub index: u8,
}

impl fmt::Display for InvalidRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register index {} out of range (0..=31)", self.index)
    }
}

impl std::error::Error for InvalidRegError {}

macro_rules! reg_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u8);

        impl $name {
            /// Creates a register from a raw index.
            ///
            /// # Errors
            ///
            /// Returns [`InvalidRegError`] if `index > 31`.
            pub fn new(index: u8) -> Result<Self, InvalidRegError> {
                if index < 32 {
                    Ok(Self(index))
                } else {
                    Err(InvalidRegError { index })
                }
            }

            /// Creates a register from the low five bits of `bits`,
            /// as extracted from an instruction encoding.
            #[must_use]
            pub fn from_bits(bits: u32) -> Self {
                Self((bits & 0x1f) as u8)
            }

            /// Returns the architectural index (0..=31).
            #[must_use]
            pub fn index(self) -> usize {
                usize::from(self.0)
            }

            /// Returns the index as the raw 5-bit field value.
            #[must_use]
            pub fn bits(self) -> u32 {
                u32::from(self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl TryFrom<u8> for $name {
            type Error = InvalidRegError;

            fn try_from(index: u8) -> Result<Self, Self::Error> {
                Self::new(index)
            }
        }

        impl From<$name> for u8 {
            fn from(reg: $name) -> u8 {
                reg.0
            }
        }
    };
}

reg_newtype!(
    /// An integer (`x`) register index.
    ///
    /// `x0` is hard-wired to zero; writes to it are discarded by the
    /// execution model, not by this type.
    XReg,
    "x"
);
reg_newtype!(
    /// A floating-point (`f`) register index.
    FReg,
    "f"
);
reg_newtype!(
    /// A vector (`v`) register index.
    VReg,
    "v"
);

impl XReg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: XReg = XReg(0);
    /// Return address `x1` (`ra`).
    pub const RA: XReg = XReg(1);
    /// Stack pointer `x2` (`sp`).
    pub const SP: XReg = XReg(2);
    /// Global pointer `x3` (`gp`).
    pub const GP: XReg = XReg(3);
    /// Thread pointer `x4` (`tp`).
    pub const TP: XReg = XReg(4);
    /// First argument / return value register `x10` (`a0`).
    pub const A0: XReg = XReg(10);
    /// Second argument register `x11` (`a1`).
    pub const A1: XReg = XReg(11);

    /// ABI mnemonic for this register (e.g. `"a0"` for `x10`).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        X_ABI_NAMES[self.index()]
    }

    /// Parses either the numeric (`x7`) or ABI (`t2`) spelling.
    #[must_use]
    pub fn parse(name: &str) -> Option<XReg> {
        if let Some(rest) = name.strip_prefix('x') {
            if let Ok(n) = rest.parse::<u8>() {
                return XReg::new(n).ok();
            }
        }
        X_ABI_NAMES
            .iter()
            .position(|&abi| abi == name)
            .or(if name == "fp" { Some(8) } else { None })
            .map(|i| XReg(i as u8))
    }
}

impl FReg {
    /// First FP argument register `f10` (`fa0`).
    pub const FA0: FReg = FReg(10);

    /// ABI mnemonic for this register (e.g. `"fa0"` for `f10`).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        F_ABI_NAMES[self.index()]
    }

    /// Parses either the numeric (`f7`) or ABI (`ft7`) spelling.
    #[must_use]
    pub fn parse(name: &str) -> Option<FReg> {
        if let Some(rest) = name.strip_prefix('f') {
            if let Ok(n) = rest.parse::<u8>() {
                return FReg::new(n).ok();
            }
        }
        F_ABI_NAMES
            .iter()
            .position(|&abi| abi == name)
            .map(|i| FReg(i as u8))
    }
}

impl VReg {
    /// Vector register `v0`, also the mask register.
    pub const V0: VReg = VReg(0);

    /// Parses the numeric (`v12`) spelling.
    #[must_use]
    pub fn parse(name: &str) -> Option<VReg> {
        let rest = name.strip_prefix('v')?;
        let n = rest.parse::<u8>().ok()?;
        VReg::new(n).ok()
    }
}

const X_ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

const F_ABI_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert!(XReg::new(31).is_ok());
        assert_eq!(XReg::new(32), Err(InvalidRegError { index: 32 }));
        assert!(FReg::new(40).is_err());
        assert!(VReg::new(255).is_err());
    }

    #[test]
    fn from_bits_masks_to_five_bits() {
        assert_eq!(XReg::from_bits(0xffff_ffe5).index(), 5);
        assert_eq!(VReg::from_bits(32).index(), 0);
    }

    #[test]
    fn abi_names_round_trip() {
        for i in 0..32 {
            let x = XReg::new(i).unwrap();
            assert_eq!(XReg::parse(x.abi_name()), Some(x));
            assert_eq!(XReg::parse(&format!("x{i}")), Some(x));
            let f = FReg::new(i).unwrap();
            assert_eq!(FReg::parse(f.abi_name()), Some(f));
            let v = VReg::new(i).unwrap();
            assert_eq!(VReg::parse(&format!("v{i}")), Some(v));
        }
    }

    #[test]
    fn fp_alias_for_s0() {
        assert_eq!(XReg::parse("fp"), XReg::new(8).ok());
        assert_eq!(XReg::parse("s0"), XReg::new(8).ok());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(XReg::parse("x32"), None);
        assert_eq!(XReg::parse("y1"), None);
        assert_eq!(FReg::parse("f99"), None);
        assert_eq!(VReg::parse("w0"), None);
        assert_eq!(VReg::parse("v-1"), None);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(XReg::A0.to_string(), "a0");
        assert_eq!(XReg::ZERO.to_string(), "zero");
        assert_eq!(FReg::FA0.to_string(), "fa0");
        assert_eq!(VReg::V0.to_string(), "v0");
    }

    #[test]
    fn well_known_constants() {
        assert_eq!(XReg::RA.index(), 1);
        assert_eq!(XReg::SP.index(), 2);
        assert_eq!(XReg::A0.index(), 10);
    }
}
