//! Disassembler: [`Inst`] → assembler text.
//!
//! The output uses the same syntax the `coyote-asm` crate parses, so
//! `assemble(inst.to_string())` reproduces the instruction; that
//! round-trip is property-tested in the assembler crate.

use std::fmt;

use crate::inst::{
    AluOp, AluWOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpCvtOp, FpOp, Inst, MemWidth,
    VAddrMode, VCmpOp, VFCmpOp, VFScalar, VFpOp, VIntOp, VMaskOp, VMulOp, VScalar,
};

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Mulhsu => "mulhsu",
        AluOp::Mulhu => "mulhu",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
    }
}

fn alu_w_name(op: AluWOp) -> &'static str {
    match op {
        AluWOp::Addw => "addw",
        AluWOp::Subw => "subw",
        AluWOp::Sllw => "sllw",
        AluWOp::Srlw => "srlw",
        AluWOp::Sraw => "sraw",
        AluWOp::Mulw => "mulw",
        AluWOp::Divw => "divw",
        AluWOp::Divuw => "divuw",
        AluWOp::Remw => "remw",
        AluWOp::Remuw => "remuw",
    }
}

fn branch_name(op: BranchOp) -> &'static str {
    match op {
        BranchOp::Eq => "beq",
        BranchOp::Ne => "bne",
        BranchOp::Lt => "blt",
        BranchOp::Ge => "bge",
        BranchOp::Ltu => "bltu",
        BranchOp::Geu => "bgeu",
    }
}

fn load_name(width: MemWidth, signed: bool) -> &'static str {
    match (width, signed) {
        (MemWidth::B, true) => "lb",
        (MemWidth::H, true) => "lh",
        (MemWidth::W, true) => "lw",
        (MemWidth::D, _) => "ld",
        (MemWidth::B, false) => "lbu",
        (MemWidth::H, false) => "lhu",
        (MemWidth::W, false) => "lwu",
    }
}

fn store_name(width: MemWidth) -> &'static str {
    match width {
        MemWidth::B => "sb",
        MemWidth::H => "sh",
        MemWidth::W => "sw",
        MemWidth::D => "sd",
    }
}

fn amo_name(op: AmoOp, width: MemWidth) -> String {
    let base = match op {
        AmoOp::Lr => "lr",
        AmoOp::Sc => "sc",
        AmoOp::Swap => "amoswap",
        AmoOp::Add => "amoadd",
        AmoOp::Xor => "amoxor",
        AmoOp::And => "amoand",
        AmoOp::Or => "amoor",
        AmoOp::Min => "amomin",
        AmoOp::Max => "amomax",
        AmoOp::Minu => "amominu",
        AmoOp::Maxu => "amomaxu",
    };
    let suffix = if width == MemWidth::W { "w" } else { "d" };
    format!("{base}.{suffix}")
}

fn vint_name(op: VIntOp) -> &'static str {
    match op {
        VIntOp::Add => "vadd",
        VIntOp::Sub => "vsub",
        VIntOp::Rsub => "vrsub",
        VIntOp::And => "vand",
        VIntOp::Or => "vor",
        VIntOp::Xor => "vxor",
        VIntOp::Sll => "vsll",
        VIntOp::Srl => "vsrl",
        VIntOp::Sra => "vsra",
        VIntOp::Min => "vmin",
        VIntOp::Max => "vmax",
        VIntOp::Minu => "vminu",
        VIntOp::Maxu => "vmaxu",
    }
}

fn vmul_name(op: VMulOp) -> &'static str {
    match op {
        VMulOp::Mul => "vmul",
        VMulOp::Mulh => "vmulh",
        VMulOp::Mulhu => "vmulhu",
        VMulOp::Div => "vdiv",
        VMulOp::Divu => "vdivu",
        VMulOp::Rem => "vrem",
        VMulOp::Remu => "vremu",
        VMulOp::Macc => "vmacc",
    }
}

fn vfp_name(op: VFpOp) -> &'static str {
    match op {
        VFpOp::Add => "vfadd",
        VFpOp::Sub => "vfsub",
        VFpOp::Mul => "vfmul",
        VFpOp::Div => "vfdiv",
        VFpOp::Min => "vfmin",
        VFpOp::Max => "vfmax",
        VFpOp::Sgnj => "vfsgnj",
        VFpOp::Macc => "vfmacc",
    }
}

fn vcmp_name(op: VCmpOp) -> &'static str {
    match op {
        VCmpOp::Eq => "vmseq",
        VCmpOp::Ne => "vmsne",
        VCmpOp::Ltu => "vmsltu",
        VCmpOp::Lt => "vmslt",
        VCmpOp::Leu => "vmsleu",
        VCmpOp::Le => "vmsle",
        VCmpOp::Gtu => "vmsgtu",
        VCmpOp::Gt => "vmsgt",
    }
}

fn vfcmp_name(op: VFCmpOp) -> &'static str {
    match op {
        VFCmpOp::Eq => "vmfeq",
        VFCmpOp::Le => "vmfle",
        VFCmpOp::Lt => "vmflt",
        VFCmpOp::Ne => "vmfne",
        VFCmpOp::Gt => "vmfgt",
        VFCmpOp::Ge => "vmfge",
    }
}

fn vmask_name(op: VMaskOp) -> &'static str {
    match op {
        VMaskOp::And => "vmand",
        VMaskOp::Nand => "vmnand",
        VMaskOp::AndNot => "vmandn",
        VMaskOp::Xor => "vmxor",
        VMaskOp::Or => "vmor",
        VMaskOp::Nor => "vmnor",
        VMaskOp::OrNot => "vmorn",
        VMaskOp::Xnor => "vmxnor",
    }
}

fn vmem_name(load: bool, mode: VAddrMode, eew: crate::vtype::Sew) -> String {
    let dir = if load { "l" } else { "s" };
    let kind = match mode {
        VAddrMode::Unit => "e",
        VAddrMode::Strided(_) => "se",
        VAddrMode::Indexed(_) => "uxei",
    };
    format!("v{dir}{kind}{}.v", eew.bits())
}

fn mask_suffix(vm: bool) -> &'static str {
    if vm {
        ""
    } else {
        ", v0.t"
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm >> 12) & 0xfffff),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm >> 12) & 0xfffff),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", branch_name(op)),
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", load_name(width, signed)),
            Inst::Store {
                width,
                rs2,
                rs1,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", store_name(width)),
            Inst::OpImm { op, rd, rs1, imm } => {
                let name = match op {
                    AluOp::Add => "addi",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    AluOp::Xor => "xori",
                    AluOp::Or => "ori",
                    AluOp::And => "andi",
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    _ => "op-imm?",
                };
                write!(f, "{name} {rd}, {rs1}, {imm}")
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op))
            }
            Inst::OpImm32 { op, rd, rs1, imm } => {
                let name = match op {
                    AluWOp::Addw => "addiw",
                    AluWOp::Sllw => "slliw",
                    AluWOp::Srlw => "srliw",
                    AluWOp::Sraw => "sraiw",
                    _ => "op-imm-32?",
                };
                write!(f, "{name} {rd}, {rs1}, {imm}")
            }
            Inst::Op32 { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_w_name(op))
            }
            Inst::Fence => f.write_str("fence"),
            Inst::Ecall => f.write_str("ecall"),
            Inst::Ebreak => f.write_str("ebreak"),
            Inst::Csr { op, rd, csr, src } => {
                let base = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                };
                match src {
                    CsrSrc::Reg(rs1) => write!(f, "{base} {rd}, {csr}, {rs1}"),
                    CsrSrc::Imm(z) => write!(f, "{base}i {rd}, {csr}, {z}"),
                }
            }
            Inst::Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
            } => {
                if op == AmoOp::Lr {
                    write!(f, "{} {rd}, ({rs1})", amo_name(op, width))
                } else {
                    write!(f, "{} {rd}, {rs2}, ({rs1})", amo_name(op, width))
                }
            }
            Inst::Fld { rd, rs1, offset } => write!(f, "fld {rd}, {offset}({rs1})"),
            Inst::Fsd { rs2, rs1, offset } => write!(f, "fsd {rs2}, {offset}({rs1})"),
            Inst::FpOp { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpOp::Add => "fadd.d",
                    FpOp::Sub => "fsub.d",
                    FpOp::Mul => "fmul.d",
                    FpOp::Div => "fdiv.d",
                    FpOp::Sgnj => "fsgnj.d",
                    FpOp::Sgnjn => "fsgnjn.d",
                    FpOp::Sgnjx => "fsgnjx.d",
                    FpOp::Min => "fmin.d",
                    FpOp::Max => "fmax.d",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Inst::FpFma {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                let name = match op {
                    FmaOp::Madd => "fmadd.d",
                    FmaOp::Msub => "fmsub.d",
                    FmaOp::Nmsub => "fnmsub.d",
                    FmaOp::Nmadd => "fnmadd.d",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}, {rs3}")
            }
            Inst::FpCmp { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpCmpOp::Eq => "feq.d",
                    FpCmpOp::Lt => "flt.d",
                    FpCmpOp::Le => "fle.d",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Inst::FpCvt { op, rd, rs1 } => {
                // rd/rs1 are raw indices; render with the class each side
                // of the conversion uses.
                let (name, rd_f, rs1_f) = match op {
                    FpCvtOp::DFromL => ("fcvt.d.l", true, false),
                    FpCvtOp::DFromLu => ("fcvt.d.lu", true, false),
                    FpCvtOp::DFromW => ("fcvt.d.w", true, false),
                    FpCvtOp::LFromD => ("fcvt.l.d", false, true),
                    FpCvtOp::LuFromD => ("fcvt.lu.d", false, true),
                    FpCvtOp::WFromD => ("fcvt.w.d", false, true),
                };
                let rd_s = if rd_f {
                    crate::reg::FReg::new(rd).map(|r| r.to_string())
                } else {
                    crate::reg::XReg::new(rd).map(|r| r.to_string())
                }
                .unwrap_or_else(|_| format!("?{rd}"));
                let rs1_s = if rs1_f {
                    crate::reg::FReg::new(rs1).map(|r| r.to_string())
                } else {
                    crate::reg::XReg::new(rs1).map(|r| r.to_string())
                }
                .unwrap_or_else(|_| format!("?{rs1}"));
                write!(f, "{name} {rd_s}, {rs1_s}")
            }
            Inst::FmvXD { rd, rs1 } => write!(f, "fmv.x.d {rd}, {rs1}"),
            Inst::FmvDX { rd, rs1 } => write!(f, "fmv.d.x {rd}, {rs1}"),
            Inst::Vsetvli { rd, rs1, vtype } => write!(f, "vsetvli {rd}, {rs1}, {vtype}"),
            Inst::Vsetivli { rd, avl, vtype } => write!(f, "vsetivli {rd}, {avl}, {vtype}"),
            Inst::Vsetvl { rd, rs1, rs2 } => write!(f, "vsetvl {rd}, {rs1}, {rs2}"),
            Inst::VLoad {
                vd,
                rs1,
                mode,
                eew,
                vm,
            } => {
                let name = vmem_name(true, mode, eew);
                match mode {
                    VAddrMode::Unit => write!(f, "{name} {vd}, ({rs1}){}", mask_suffix(vm)),
                    VAddrMode::Strided(rs2) => {
                        write!(f, "{name} {vd}, ({rs1}), {rs2}{}", mask_suffix(vm))
                    }
                    VAddrMode::Indexed(v2) => {
                        write!(f, "{name} {vd}, ({rs1}), {v2}{}", mask_suffix(vm))
                    }
                }
            }
            Inst::VStore {
                vs3,
                rs1,
                mode,
                eew,
                vm,
            } => {
                let name = vmem_name(false, mode, eew);
                match mode {
                    VAddrMode::Unit => write!(f, "{name} {vs3}, ({rs1}){}", mask_suffix(vm)),
                    VAddrMode::Strided(rs2) => {
                        write!(f, "{name} {vs3}, ({rs1}), {rs2}{}", mask_suffix(vm))
                    }
                    VAddrMode::Indexed(v2) => {
                        write!(f, "{name} {vs3}, ({rs1}), {v2}{}", mask_suffix(vm))
                    }
                }
            }
            Inst::VIntOp {
                op,
                vd,
                vs2,
                src,
                vm,
            } => match src {
                VScalar::Vector(v1) => write!(
                    f,
                    "{}.vv {vd}, {vs2}, {v1}{}",
                    vint_name(op),
                    mask_suffix(vm)
                ),
                VScalar::Xreg(r1) => write!(
                    f,
                    "{}.vx {vd}, {vs2}, {r1}{}",
                    vint_name(op),
                    mask_suffix(vm)
                ),
            },
            Inst::VIntOpImm {
                op,
                vd,
                vs2,
                imm,
                vm,
            } => write!(
                f,
                "{}.vi {vd}, {vs2}, {imm}{}",
                vint_name(op),
                mask_suffix(vm)
            ),
            Inst::VMulOp {
                op,
                vd,
                vs2,
                src,
                vm,
            } => match src {
                VScalar::Vector(v1) => write!(
                    f,
                    "{}.vv {vd}, {vs2}, {v1}{}",
                    vmul_name(op),
                    mask_suffix(vm)
                ),
                VScalar::Xreg(r1) => write!(
                    f,
                    "{}.vx {vd}, {vs2}, {r1}{}",
                    vmul_name(op),
                    mask_suffix(vm)
                ),
            },
            Inst::VFpOp {
                op,
                vd,
                vs2,
                src,
                vm,
            } => match src {
                VFScalar::Vector(v1) => write!(
                    f,
                    "{}.vv {vd}, {vs2}, {v1}{}",
                    vfp_name(op),
                    mask_suffix(vm)
                ),
                VFScalar::Freg(r1) => write!(
                    f,
                    "{}.vf {vd}, {vs2}, {r1}{}",
                    vfp_name(op),
                    mask_suffix(vm)
                ),
            },
            Inst::VRedSum { vd, vs2, vs1, vm } => {
                write!(f, "vredsum.vs {vd}, {vs2}, {vs1}{}", mask_suffix(vm))
            }
            Inst::VFRedSum { vd, vs2, vs1, vm } => {
                write!(f, "vfredusum.vs {vd}, {vs2}, {vs1}{}", mask_suffix(vm))
            }
            Inst::VMvVV { vd, vs1 } => write!(f, "vmv.v.v {vd}, {vs1}"),
            Inst::VMvVX { vd, rs1 } => write!(f, "vmv.v.x {vd}, {rs1}"),
            Inst::VMvVI { vd, imm } => write!(f, "vmv.v.i {vd}, {imm}"),
            Inst::VFMvVF { vd, rs1 } => write!(f, "vfmv.v.f {vd}, {rs1}"),
            Inst::VMvXS { rd, vs2 } => write!(f, "vmv.x.s {rd}, {vs2}"),
            Inst::VMvSX { vd, rs1 } => write!(f, "vmv.s.x {vd}, {rs1}"),
            Inst::VFMvFS { rd, vs2 } => write!(f, "vfmv.f.s {rd}, {vs2}"),
            Inst::VFMvSF { vd, rs1 } => write!(f, "vfmv.s.f {vd}, {rs1}"),
            Inst::Vid { vd, vm } => write!(f, "vid.v {vd}{}", mask_suffix(vm)),
            Inst::VMaskCmp {
                op,
                vd,
                vs2,
                src,
                vm,
            } => match src {
                VScalar::Vector(v1) => write!(
                    f,
                    "{}.vv {vd}, {vs2}, {v1}{}",
                    vcmp_name(op),
                    mask_suffix(vm)
                ),
                VScalar::Xreg(r1) => write!(
                    f,
                    "{}.vx {vd}, {vs2}, {r1}{}",
                    vcmp_name(op),
                    mask_suffix(vm)
                ),
            },
            Inst::VMaskCmpImm {
                op,
                vd,
                vs2,
                imm,
                vm,
            } => write!(
                f,
                "{}.vi {vd}, {vs2}, {imm}{}",
                vcmp_name(op),
                mask_suffix(vm)
            ),
            Inst::VFMaskCmp {
                op,
                vd,
                vs2,
                src,
                vm,
            } => match src {
                VFScalar::Vector(v1) => write!(
                    f,
                    "{}.vv {vd}, {vs2}, {v1}{}",
                    vfcmp_name(op),
                    mask_suffix(vm)
                ),
                VFScalar::Freg(r1) => write!(
                    f,
                    "{}.vf {vd}, {vs2}, {r1}{}",
                    vfcmp_name(op),
                    mask_suffix(vm)
                ),
            },
            Inst::VMaskLogical { op, vd, vs2, vs1 } => {
                write!(f, "{}.mm {vd}, {vs2}, {vs1}", vmask_name(op))
            }
            Inst::VMerge { vd, vs2, src } => match src {
                VScalar::Vector(v1) => write!(f, "vmerge.vvm {vd}, {vs2}, {v1}, v0"),
                VScalar::Xreg(r1) => write!(f, "vmerge.vxm {vd}, {vs2}, {r1}, v0"),
            },
            Inst::VMergeImm { vd, vs2, imm } => {
                write!(f, "vmerge.vim {vd}, {vs2}, {imm}, v0")
            }
            Inst::VFMerge { vd, vs2, rs1 } => {
                write!(f, "vfmerge.vfm {vd}, {vs2}, {rs1}, v0")
            }
            Inst::Vcpop { rd, vs2, vm } => {
                write!(f, "vcpop.m {rd}, {vs2}{}", mask_suffix(vm))
            }
            Inst::Vfirst { rd, vs2, vm } => {
                write!(f, "vfirst.m {rd}, {vs2}{}", mask_suffix(vm))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, VReg, XReg};
    use crate::vtype::{Lmul, Sew, VType};

    fn x(n: u8) -> XReg {
        XReg::new(n).unwrap()
    }
    fn v(n: u8) -> VReg {
        VReg::new(n).unwrap()
    }

    #[test]
    fn scalar_disassembly() {
        let inst = Inst::OpImm {
            op: AluOp::Add,
            rd: x(2),
            rs1: x(2),
            imm: -16,
        };
        assert_eq!(inst.to_string(), "addi sp, sp, -16");

        let inst = Inst::Load {
            width: MemWidth::D,
            signed: true,
            rd: x(10),
            rs1: x(2),
            offset: 8,
        };
        assert_eq!(inst.to_string(), "ld a0, 8(sp)");
    }

    #[test]
    fn vector_disassembly() {
        let inst = Inst::VLoad {
            vd: v(8),
            rs1: x(10),
            mode: VAddrMode::Unit,
            eew: Sew::E64,
            vm: true,
        };
        assert_eq!(inst.to_string(), "vle64.v v8, (a0)");

        let inst = Inst::VLoad {
            vd: v(8),
            rs1: x(10),
            mode: VAddrMode::Indexed(v(16)),
            eew: Sew::E64,
            vm: true,
        };
        assert_eq!(inst.to_string(), "vluxei64.v v8, (a0), v16");

        let inst = Inst::Vsetvli {
            rd: x(5),
            rs1: x(10),
            vtype: VType::new(Sew::E64, Lmul::M1),
        };
        assert_eq!(inst.to_string(), "vsetvli t0, a0, e64,m1,ta,ma");
    }

    #[test]
    fn masked_op_gets_v0t_suffix() {
        let inst = Inst::VIntOp {
            op: VIntOp::Add,
            vd: v(1),
            vs2: v(2),
            src: VScalar::Vector(v(3)),
            vm: false,
        };
        assert_eq!(inst.to_string(), "vadd.vv v1, v2, v3, v0.t");
    }

    #[test]
    fn fp_disassembly() {
        let inst = Inst::FpFma {
            op: FmaOp::Madd,
            rd: FReg::new(1).unwrap(),
            rs1: FReg::new(2).unwrap(),
            rs2: FReg::new(3).unwrap(),
            rs3: FReg::new(4).unwrap(),
        };
        assert_eq!(inst.to_string(), "fmadd.d ft1, ft2, ft3, ft4");

        let inst = Inst::FpCvt {
            op: FpCvtOp::DFromL,
            rd: 1,
            rs1: 10,
        };
        assert_eq!(inst.to_string(), "fcvt.d.l ft1, a0");
    }
}
