//! The decoded instruction representation.
//!
//! [`Inst`] covers the subset of RV64 that Coyote's HPC kernels and the
//! paper's evaluation need: RV64I, the M extension, a word/doubleword
//! subset of A, the `Zicsr` instructions, the D floating-point extension
//! and a substantial slice of the V vector extension (unit-stride,
//! strided and indexed memory operations plus the integer/floating-point
//! arithmetic used by matmul, `SpMV` and stencil kernels).
//!
//! The representation is *semantic*: immediates are stored fully
//! sign-extended and shifted, so the execution engine never re-derives
//! encoding details.

use crate::csr::Csr;
use crate::reg::{FReg, VReg, XReg};
use crate::vtype::{Sew, VType};

/// Conditional branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
    /// Branch if less than (unsigned).
    Ltu,
    /// Branch if greater or equal (unsigned).
    Geu,
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemWidth {
    /// One byte.
    B,
    /// Two bytes (halfword).
    H,
    /// Four bytes (word).
    W,
    /// Eight bytes (doubleword).
    D,
}

impl MemWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    /// `log2` of the access size.
    #[must_use]
    pub fn log2_bytes(self) -> u32 {
        match self {
            MemWidth::B => 0,
            MemWidth::H => 1,
            MemWidth::W => 2,
            MemWidth::D => 3,
        }
    }
}

/// Integer register-register / register-immediate operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Logical left shift.
    Sll,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// Multiplication, low 64 bits (M extension).
    Mul,
    /// Multiplication, high bits, signed×signed.
    Mulh,
    /// Multiplication, high bits, signed×unsigned.
    Mulhsu,
    /// Multiplication, high bits, unsigned×unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

impl AluOp {
    /// Whether this operation belongs to the M extension (and thus uses
    /// funct7 = `0000001` in the register encoding).
    #[must_use]
    pub fn is_m_ext(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
        )
    }
}

/// 32-bit (`*W`) integer operation for RV64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluWOp {
    /// `addw` / `addiw`.
    Addw,
    /// `subw` (register form only).
    Subw,
    /// `sllw` / `slliw`.
    Sllw,
    /// `srlw` / `srliw`.
    Srlw,
    /// `sraw` / `sraiw`.
    Sraw,
    /// `mulw` (M extension).
    Mulw,
    /// `divw` (M extension).
    Divw,
    /// `divuw` (M extension).
    Divuw,
    /// `remw` (M extension).
    Remw,
    /// `remuw` (M extension).
    Remuw,
}

impl AluWOp {
    /// Whether this operation belongs to the M extension.
    #[must_use]
    pub fn is_m_ext(self) -> bool {
        matches!(
            self,
            AluWOp::Mulw | AluWOp::Divw | AluWOp::Divuw | AluWOp::Remw | AluWOp::Remuw
        )
    }
}

/// Atomic memory operation (A extension subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Load-reserved.
    Lr,
    /// Store-conditional.
    Sc,
    /// Atomic swap.
    Swap,
    /// Atomic add.
    Add,
    /// Atomic xor.
    Xor,
    /// Atomic and.
    And,
    /// Atomic or.
    Or,
    /// Atomic minimum (signed).
    Min,
    /// Atomic maximum (signed).
    Max,
    /// Atomic minimum (unsigned).
    Minu,
    /// Atomic maximum (unsigned).
    Maxu,
}

/// CSR access operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Read/write (`csrrw`).
    Rw,
    /// Read and set bits (`csrrs`).
    Rs,
    /// Read and clear bits (`csrrc`).
    Rc,
}

/// Source operand of a CSR instruction: register or 5-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form (`csrrw`/`csrrs`/`csrrc`).
    Reg(XReg),
    /// Immediate form (`csrrwi`/`csrrsi`/`csrrci`).
    Imm(u8),
}

/// Two-operand double-precision floating-point operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `fadd.d`.
    Add,
    /// `fsub.d`.
    Sub,
    /// `fmul.d`.
    Mul,
    /// `fdiv.d`.
    Div,
    /// `fsgnj.d` (also `fmv.d`).
    Sgnj,
    /// `fsgnjn.d` (also `fneg.d`).
    Sgnjn,
    /// `fsgnjx.d` (also `fabs.d`).
    Sgnjx,
    /// `fmin.d`.
    Min,
    /// `fmax.d`.
    Max,
}

/// Fused multiply-add family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FmaOp {
    /// `fmadd.d`: `rd = rs1*rs2 + rs3`.
    Madd,
    /// `fmsub.d`: `rd = rs1*rs2 - rs3`.
    Msub,
    /// `fnmsub.d`: `rd = -(rs1*rs2) + rs3`.
    Nmsub,
    /// `fnmadd.d`: `rd = -(rs1*rs2) - rs3`.
    Nmadd,
}

/// Floating-point comparison writing an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    /// `feq.d`.
    Eq,
    /// `flt.d`.
    Lt,
    /// `fle.d`.
    Le,
}

/// Conversions between `f64` and integer registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCvtOp {
    /// `fcvt.d.l`: signed 64-bit integer to double.
    DFromL,
    /// `fcvt.d.lu`: unsigned 64-bit integer to double.
    DFromLu,
    /// `fcvt.l.d`: double to signed 64-bit integer (round toward zero).
    LFromD,
    /// `fcvt.lu.d`: double to unsigned 64-bit integer (round toward zero).
    LuFromD,
    /// `fcvt.d.w`: signed 32-bit integer to double.
    DFromW,
    /// `fcvt.w.d`: double to signed 32-bit integer (round toward zero).
    WFromD,
}

/// Vector memory addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VAddrMode {
    /// Unit-stride: consecutive elements.
    Unit,
    /// Constant byte stride held in an `x` register.
    Strided(XReg),
    /// Indexed (gather/scatter): byte offsets held in a vector register,
    /// unordered variant.
    Indexed(VReg),
}

/// Integer vector operation usable in `.vv`, `.vx` and (subset) `.vi`
/// forms (the OPIVV/OPIVX/OPIVI funct3 space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VIntOp {
    /// `vadd`.
    Add,
    /// `vsub` (no `.vi` form).
    Sub,
    /// `vrsub` (`.vx`/`.vi` only).
    Rsub,
    /// `vand`.
    And,
    /// `vor`.
    Or,
    /// `vxor`.
    Xor,
    /// `vsll`.
    Sll,
    /// `vsrl`.
    Srl,
    /// `vsra`.
    Sra,
    /// `vmin` (signed; no `.vi` form).
    Min,
    /// `vmax` (signed; no `.vi` form).
    Max,
    /// `vminu` (no `.vi` form).
    Minu,
    /// `vmaxu` (no `.vi` form).
    Maxu,
}

/// Integer vector multiply/divide family (the OPMVV/OPMVX funct3 space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VMulOp {
    /// `vmul`.
    Mul,
    /// `vmulh`.
    Mulh,
    /// `vmulhu`.
    Mulhu,
    /// `vdiv`.
    Div,
    /// `vdivu`.
    Divu,
    /// `vrem`.
    Rem,
    /// `vremu`.
    Remu,
    /// `vmacc`: `vd += vs1 * vs2`.
    Macc,
}

/// Integer vector comparison producing a mask (the `vmseq` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VCmpOp {
    /// `vmseq`.
    Eq,
    /// `vmsne`.
    Ne,
    /// `vmsltu` (no `.vi` form).
    Ltu,
    /// `vmslt` (no `.vi` form).
    Lt,
    /// `vmsleu`.
    Leu,
    /// `vmsle`.
    Le,
    /// `vmsgtu` (`.vx`/`.vi` only).
    Gtu,
    /// `vmsgt` (`.vx`/`.vi` only).
    Gt,
}

/// Floating-point vector comparison producing a mask (`vmf*` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VFCmpOp {
    /// `vmfeq`.
    Eq,
    /// `vmfle`.
    Le,
    /// `vmflt`.
    Lt,
    /// `vmfne`.
    Ne,
    /// `vmfgt` (`.vf` only).
    Gt,
    /// `vmfge` (`.vf` only).
    Ge,
}

/// Mask-register logical operation (`vm*.mm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VMaskOp {
    /// `vmand.mm`.
    And,
    /// `vmnand.mm`.
    Nand,
    /// `vmandn.mm` (`vd = vs2 & !vs1`).
    AndNot,
    /// `vmxor.mm`.
    Xor,
    /// `vmor.mm`.
    Or,
    /// `vmnor.mm`.
    Nor,
    /// `vmorn.mm` (`vd = vs2 | !vs1`).
    OrNot,
    /// `vmxnor.mm`.
    Xnor,
}

/// Floating-point vector operation (the OPFVV/OPFVF funct3 space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VFpOp {
    /// `vfadd`.
    Add,
    /// `vfsub`.
    Sub,
    /// `vfmul`.
    Mul,
    /// `vfdiv`.
    Div,
    /// `vfmin`.
    Min,
    /// `vfmax`.
    Max,
    /// `vfsgnj`.
    Sgnj,
    /// `vfmacc`: `vd += vs1 * vs2` (fused).
    Macc,
}

/// Scalar source of a `.vx`/`.vf` vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VScalar {
    /// A second vector operand (`.vv` form), naming `vs1`.
    Vector(VReg),
    /// An `x`-register operand (`.vx` form).
    Xreg(XReg),
}

/// Scalar source of a floating-point vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VFScalar {
    /// A second vector operand (`.vv` form), naming `vs1`.
    Vector(VReg),
    /// An `f`-register operand (`.vf` form).
    Freg(FReg),
}

/// A decoded instruction.
///
/// Construct values directly, via [`crate::decode::decode`], or by
/// assembling text with the `coyote-asm` crate; re-encode with
/// [`crate::encode::encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    // ---- RV64I ----
    /// Load upper immediate. `imm` is the full sign-extended value
    /// (already shifted left by 12).
    Lui {
        /// Destination register.
        rd: XReg,
        /// Sign-extended, pre-shifted immediate (multiple of 4096).
        imm: i64,
    },
    /// Add upper immediate to PC.
    Auipc {
        /// Destination register.
        rd: XReg,
        /// Sign-extended, pre-shifted immediate (multiple of 4096).
        imm: i64,
    },
    /// Jump and link.
    Jal {
        /// Destination register for the return address.
        rd: XReg,
        /// PC-relative byte offset (multiple of 2).
        offset: i32,
    },
    /// Jump and link register.
    Jalr {
        /// Destination register for the return address.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// Byte offset added to `rs1`.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison performed.
        op: BranchOp,
        /// First compared register.
        rs1: XReg,
        /// Second compared register.
        rs2: XReg,
        /// PC-relative byte offset (multiple of 2).
        offset: i32,
    },
    /// Scalar integer load.
    Load {
        /// Access width.
        width: MemWidth,
        /// Whether the loaded value is sign-extended.
        signed: bool,
        /// Destination register.
        rd: XReg,
        /// Base address register.
        rs1: XReg,
        /// Byte offset.
        offset: i32,
    },
    /// Scalar integer store.
    Store {
        /// Access width.
        width: MemWidth,
        /// Source data register.
        rs2: XReg,
        /// Base address register.
        rs1: XReg,
        /// Byte offset.
        offset: i32,
    },
    /// Register-immediate ALU operation. For shifts, `imm` holds the
    /// 6-bit shift amount. `Sub` and M-extension ops are invalid here.
    OpImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Sign-extended 12-bit immediate (or shift amount).
        imm: i64,
    },
    /// Register-register ALU operation (including M extension).
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: XReg,
        /// First source register.
        rs1: XReg,
        /// Second source register.
        rs2: XReg,
    },
    /// 32-bit register-immediate operation (`addiw`, `slliw`, …).
    OpImm32 {
        /// Operation (`Addw`, `Sllw`, `Srlw`, `Sraw` only).
        op: AluWOp,
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Sign-extended 12-bit immediate (or 5-bit shift amount).
        imm: i64,
    },
    /// 32-bit register-register operation (including M-extension `*w`).
    Op32 {
        /// Operation.
        op: AluWOp,
        /// Destination register.
        rd: XReg,
        /// First source register.
        rs1: XReg,
        /// Second source register.
        rs2: XReg,
    },
    /// Memory fence (a timing no-op in Coyote's in-order model).
    Fence,
    /// Environment call; Coyote's baremetal HTIF intercepts it.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// CSR access.
    Csr {
        /// Operation.
        op: CsrOp,
        /// Destination register for the old CSR value.
        rd: XReg,
        /// Accessed CSR.
        csr: Csr,
        /// Source operand.
        src: CsrSrc,
    },
    /// Atomic memory operation (word or doubleword).
    Amo {
        /// Operation.
        op: AmoOp,
        /// Access width (`W` or `D`).
        width: MemWidth,
        /// Destination register for the old memory value.
        rd: XReg,
        /// Address register.
        rs1: XReg,
        /// Data register (must be `x0` for `lr`).
        rs2: XReg,
    },

    // ---- D extension ----
    /// `fld`.
    Fld {
        /// Destination FP register.
        rd: FReg,
        /// Base address register.
        rs1: XReg,
        /// Byte offset.
        offset: i32,
    },
    /// `fsd`.
    Fsd {
        /// Source FP register.
        rs2: FReg,
        /// Base address register.
        rs1: XReg,
        /// Byte offset.
        offset: i32,
    },
    /// Two-operand double-precision operation.
    FpOp {
        /// Operation.
        op: FpOp,
        /// Destination FP register.
        rd: FReg,
        /// First source.
        rs1: FReg,
        /// Second source.
        rs2: FReg,
    },
    /// Fused multiply-add.
    FpFma {
        /// Variant.
        op: FmaOp,
        /// Destination FP register.
        rd: FReg,
        /// Multiplicand.
        rs1: FReg,
        /// Multiplier.
        rs2: FReg,
        /// Addend.
        rs3: FReg,
    },
    /// Floating-point compare into an integer register.
    FpCmp {
        /// Comparison.
        op: FpCmpOp,
        /// Integer destination (1 if true).
        rd: XReg,
        /// First source.
        rs1: FReg,
        /// Second source.
        rs2: FReg,
    },
    /// Conversion between double and integer registers.
    FpCvt {
        /// Conversion performed.
        op: FpCvtOp,
        /// Destination register index (interpreted per `op`).
        rd: u8,
        /// Source register index (interpreted per `op`).
        rs1: u8,
    },
    /// `fmv.x.d`: move raw bits FP → integer register.
    FmvXD {
        /// Integer destination.
        rd: XReg,
        /// FP source.
        rs1: FReg,
    },
    /// `fmv.d.x`: move raw bits integer → FP register.
    FmvDX {
        /// FP destination.
        rd: FReg,
        /// Integer source.
        rs1: XReg,
    },

    // ---- V extension ----
    /// `vsetvli rd, rs1, vtypei`.
    Vsetvli {
        /// Receives the new `vl`.
        rd: XReg,
        /// Requested application vector length (`x0` = keep/maximal).
        rs1: XReg,
        /// Requested type.
        vtype: VType,
    },
    /// `vsetivli rd, uimm, vtypei`.
    Vsetivli {
        /// Receives the new `vl`.
        rd: XReg,
        /// 5-bit immediate AVL.
        avl: u8,
        /// Requested type.
        vtype: VType,
    },
    /// `vsetvl rd, rs1, rs2`.
    Vsetvl {
        /// Receives the new `vl`.
        rd: XReg,
        /// Requested AVL.
        rs1: XReg,
        /// Register holding the raw `vtype` bits.
        rs2: XReg,
    },
    /// Vector load.
    VLoad {
        /// Destination vector register.
        vd: VReg,
        /// Base address register.
        rs1: XReg,
        /// Addressing mode.
        mode: VAddrMode,
        /// Effective element width encoded in the instruction.
        eew: Sew,
        /// Mask bit: `true` = unmasked (`vm`=1).
        vm: bool,
    },
    /// Vector store.
    VStore {
        /// Source vector register.
        vs3: VReg,
        /// Base address register.
        rs1: XReg,
        /// Addressing mode.
        mode: VAddrMode,
        /// Effective element width encoded in the instruction.
        eew: Sew,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// Integer vector ALU op, `.vv`/`.vx` forms.
    VIntOp {
        /// Operation.
        op: VIntOp,
        /// Destination.
        vd: VReg,
        /// Vector source (`vs2`).
        vs2: VReg,
        /// Second operand.
        src: VScalar,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// Integer vector ALU op, `.vi` form (5-bit signed immediate).
    VIntOpImm {
        /// Operation (immediate-capable subset).
        op: VIntOp,
        /// Destination.
        vd: VReg,
        /// Vector source (`vs2`).
        vs2: VReg,
        /// Sign-extended 5-bit immediate.
        imm: i8,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// Integer vector multiply/divide/MAC, `.vv`/`.vx` forms.
    VMulOp {
        /// Operation.
        op: VMulOp,
        /// Destination (also accumulator for `Macc`).
        vd: VReg,
        /// Vector source (`vs2`).
        vs2: VReg,
        /// Second operand.
        src: VScalar,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// Floating-point vector op, `.vv`/`.vf` forms.
    VFpOp {
        /// Operation.
        op: VFpOp,
        /// Destination (also accumulator for `Macc`).
        vd: VReg,
        /// Vector source (`vs2`).
        vs2: VReg,
        /// Second operand.
        src: VFScalar,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// `vredsum.vs`: `vd[0] = sum(vs2[*]) + vs1[0]`.
    VRedSum {
        /// Destination.
        vd: VReg,
        /// Summed vector.
        vs2: VReg,
        /// Scalar seed in element 0.
        vs1: VReg,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// `vfredusum.vs` (unordered FP reduction).
    VFRedSum {
        /// Destination.
        vd: VReg,
        /// Summed vector.
        vs2: VReg,
        /// Scalar seed in element 0.
        vs1: VReg,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// `vmv.v.v`.
    VMvVV {
        /// Destination.
        vd: VReg,
        /// Source (`vs1`).
        vs1: VReg,
    },
    /// `vmv.v.x` (splat an integer register).
    VMvVX {
        /// Destination.
        vd: VReg,
        /// Splatted register.
        rs1: XReg,
    },
    /// `vmv.v.i` (splat a 5-bit immediate).
    VMvVI {
        /// Destination.
        vd: VReg,
        /// Sign-extended immediate.
        imm: i8,
    },
    /// `vfmv.v.f` (splat an FP register).
    VFMvVF {
        /// Destination.
        vd: VReg,
        /// Splatted register.
        rs1: FReg,
    },
    /// `vmv.x.s`: element 0 → integer register.
    VMvXS {
        /// Integer destination.
        rd: XReg,
        /// Vector source.
        vs2: VReg,
    },
    /// `vmv.s.x`: integer register → element 0.
    VMvSX {
        /// Vector destination.
        vd: VReg,
        /// Integer source.
        rs1: XReg,
    },
    /// `vfmv.f.s`: element 0 → FP register.
    VFMvFS {
        /// FP destination.
        rd: FReg,
        /// Vector source.
        vs2: VReg,
    },
    /// `vfmv.s.f`: FP register → element 0.
    VFMvSF {
        /// Vector destination.
        vd: VReg,
        /// FP source.
        rs1: FReg,
    },
    /// `vid.v`: write element indices 0,1,2,… .
    Vid {
        /// Destination.
        vd: VReg,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// Integer compare into a mask register, `.vv`/`.vx` forms.
    VMaskCmp {
        /// Comparison.
        op: VCmpOp,
        /// Mask destination.
        vd: VReg,
        /// Vector source.
        vs2: VReg,
        /// Second operand.
        src: VScalar,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// Integer compare into a mask register, `.vi` form.
    VMaskCmpImm {
        /// Comparison (immediate-capable subset).
        op: VCmpOp,
        /// Mask destination.
        vd: VReg,
        /// Vector source.
        vs2: VReg,
        /// Sign-extended 5-bit immediate.
        imm: i8,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// Floating-point compare into a mask register.
    VFMaskCmp {
        /// Comparison.
        op: VFCmpOp,
        /// Mask destination.
        vd: VReg,
        /// Vector source.
        vs2: VReg,
        /// Second operand.
        src: VFScalar,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// Mask-register logical, `.mm` form (always unmasked).
    VMaskLogical {
        /// Operation.
        op: VMaskOp,
        /// Destination mask.
        vd: VReg,
        /// First source mask (`vs2`).
        vs2: VReg,
        /// Second source mask (`vs1`).
        vs1: VReg,
    },
    /// `vmerge.v?m`: `vd[i] = v0.mask[i] ? src[i] : vs2[i]`.
    VMerge {
        /// Destination.
        vd: VReg,
        /// Taken where the mask bit is clear.
        vs2: VReg,
        /// Taken where the mask bit is set.
        src: VScalar,
    },
    /// `vmerge.vim` with an immediate "set" operand.
    VMergeImm {
        /// Destination.
        vd: VReg,
        /// Taken where the mask bit is clear.
        vs2: VReg,
        /// Taken (sign-extended) where the mask bit is set.
        imm: i8,
    },
    /// `vfmerge.vfm`: `vd[i] = v0.mask[i] ? rs1 : vs2[i]`.
    VFMerge {
        /// Destination.
        vd: VReg,
        /// Taken where the mask bit is clear.
        vs2: VReg,
        /// FP scalar taken where the mask bit is set.
        rs1: FReg,
    },
    /// `vcpop.m`: count set mask bits in `vs2[0..vl]`.
    Vcpop {
        /// Integer destination.
        rd: XReg,
        /// Source mask.
        vs2: VReg,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
    /// `vfirst.m`: index of the first set mask bit, or -1.
    Vfirst {
        /// Integer destination.
        rd: XReg,
        /// Source mask.
        vs2: VReg,
        /// Mask bit: `true` = unmasked.
        vm: bool,
    },
}

impl Inst {
    /// Whether this instruction may redirect control flow.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// Whether this instruction accesses data memory.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::Amo { .. }
                | Inst::Fld { .. }
                | Inst::Fsd { .. }
                | Inst::VLoad { .. }
                | Inst::VStore { .. }
        )
    }

    /// Whether this instruction belongs to the V extension.
    #[must_use]
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Inst::Vsetvli { .. }
                | Inst::Vsetivli { .. }
                | Inst::Vsetvl { .. }
                | Inst::VLoad { .. }
                | Inst::VStore { .. }
                | Inst::VIntOp { .. }
                | Inst::VIntOpImm { .. }
                | Inst::VMulOp { .. }
                | Inst::VFpOp { .. }
                | Inst::VRedSum { .. }
                | Inst::VFRedSum { .. }
                | Inst::VMvVV { .. }
                | Inst::VMvVX { .. }
                | Inst::VMvVI { .. }
                | Inst::VFMvVF { .. }
                | Inst::VMvXS { .. }
                | Inst::VMvSX { .. }
                | Inst::VFMvFS { .. }
                | Inst::VFMvSF { .. }
                | Inst::Vid { .. }
                | Inst::VMaskCmp { .. }
                | Inst::VMaskCmpImm { .. }
                | Inst::VFMaskCmp { .. }
                | Inst::VMaskLogical { .. }
                | Inst::VMerge { .. }
                | Inst::VMergeImm { .. }
                | Inst::VFMerge { .. }
                | Inst::Vcpop { .. }
                | Inst::Vfirst { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_width_sizes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::D.bytes(), 8);
        assert_eq!(MemWidth::W.log2_bytes(), 2);
    }

    #[test]
    fn classification_predicates() {
        let ld = Inst::Load {
            width: MemWidth::D,
            signed: true,
            rd: XReg::A0,
            rs1: XReg::SP,
            offset: 8,
        };
        assert!(ld.is_memory());
        assert!(!ld.is_control_flow());
        assert!(!ld.is_vector());

        let j = Inst::Jal {
            rd: XReg::RA,
            offset: 16,
        };
        assert!(j.is_control_flow());
        assert!(!j.is_memory());

        let vl = Inst::VLoad {
            vd: VReg::V0,
            rs1: XReg::A0,
            mode: VAddrMode::Unit,
            eew: Sew::E64,
            vm: true,
        };
        assert!(vl.is_memory());
        assert!(vl.is_vector());
    }

    #[test]
    fn m_extension_classification() {
        assert!(AluOp::Mul.is_m_ext());
        assert!(!AluOp::Add.is_m_ext());
        assert!(AluWOp::Remuw.is_m_ext());
        assert!(!AluWOp::Sraw.is_m_ext());
    }
}
