//! Vector type (`vtype`) register encoding per the RISC-V V extension.
//!
//! `vsetvli`-family instructions carry a `vtype` immediate that selects the
//! selected element width ([`Sew`]), the register-group multiplier
//! ([`Lmul`]) and the tail/mask agnostic policy bits. The simulator's
//! vector unit interprets the decoded [`VType`].

use std::fmt;

/// Selected element width (SEW) in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Sew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements.
    E32,
    /// 64-bit elements (the default for Coyote's HPC kernels).
    #[default]
    E64,
}

impl Sew {
    /// Element width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Sew::E8 => 8,
            Sew::E16 => 16,
            Sew::E32 => 32,
            Sew::E64 => 64,
        }
    }

    /// Element width in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        u64::from(self.bits() / 8)
    }

    /// Decodes the 3-bit `vsew` field. Returns `None` for reserved values.
    #[must_use]
    pub fn from_vsew(vsew: u32) -> Option<Sew> {
        match vsew & 0x7 {
            0 => Some(Sew::E8),
            1 => Some(Sew::E16),
            2 => Some(Sew::E32),
            3 => Some(Sew::E64),
            _ => None,
        }
    }

    /// Encodes as the 3-bit `vsew` field.
    #[must_use]
    pub fn to_vsew(self) -> u32 {
        match self {
            Sew::E8 => 0,
            Sew::E16 => 1,
            Sew::E32 => 2,
            Sew::E64 => 3,
        }
    }
}

impl fmt::Display for Sew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.bits())
    }
}

/// Vector register group multiplier (LMUL).
///
/// Fractional multipliers are decoded for completeness but the Coyote
/// kernels only use the integral ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Lmul {
    /// 1/8 of a vector register.
    MF8,
    /// 1/4 of a vector register.
    MF4,
    /// 1/2 of a vector register.
    MF2,
    /// One vector register (the default).
    #[default]
    M1,
    /// A group of two registers.
    M2,
    /// A group of four registers.
    M4,
    /// A group of eight registers.
    M8,
}

impl Lmul {
    /// Decodes the 3-bit `vlmul` field. Returns `None` for the reserved
    /// encoding `100`.
    #[must_use]
    pub fn from_vlmul(vlmul: u32) -> Option<Lmul> {
        match vlmul & 0x7 {
            0 => Some(Lmul::M1),
            1 => Some(Lmul::M2),
            2 => Some(Lmul::M4),
            3 => Some(Lmul::M8),
            5 => Some(Lmul::MF8),
            6 => Some(Lmul::MF4),
            7 => Some(Lmul::MF2),
            _ => None,
        }
    }

    /// Encodes as the 3-bit `vlmul` field.
    #[must_use]
    pub fn to_vlmul(self) -> u32 {
        match self {
            Lmul::M1 => 0,
            Lmul::M2 => 1,
            Lmul::M4 => 2,
            Lmul::M8 => 3,
            Lmul::MF8 => 5,
            Lmul::MF4 => 6,
            Lmul::MF2 => 7,
        }
    }

    /// The multiplier as a rational `(numerator, denominator)`.
    #[must_use]
    pub fn ratio(self) -> (u64, u64) {
        match self {
            Lmul::MF8 => (1, 8),
            Lmul::MF4 => (1, 4),
            Lmul::MF2 => (1, 2),
            Lmul::M1 => (1, 1),
            Lmul::M2 => (2, 1),
            Lmul::M4 => (4, 1),
            Lmul::M8 => (8, 1),
        }
    }

    /// Number of architectural registers in a group (1 for fractional).
    #[must_use]
    pub fn group_len(self) -> usize {
        match self {
            Lmul::M2 => 2,
            Lmul::M4 => 4,
            Lmul::M8 => 8,
            _ => 1,
        }
    }
}

impl fmt::Display for Lmul {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Lmul::MF8 => "mf8",
            Lmul::MF4 => "mf4",
            Lmul::MF2 => "mf2",
            Lmul::M1 => "m1",
            Lmul::M2 => "m2",
            Lmul::M4 => "m4",
            Lmul::M8 => "m8",
        };
        f.write_str(s)
    }
}

/// A decoded `vtype` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VType {
    /// Selected element width.
    pub sew: Sew,
    /// Register group multiplier.
    pub lmul: Lmul,
    /// Tail-agnostic policy bit.
    pub ta: bool,
    /// Mask-agnostic policy bit.
    pub ma: bool,
}

impl VType {
    /// Builds a `vtype` with both agnostic bits set (`ta, ma`), the common
    /// configuration used by all Coyote kernels.
    #[must_use]
    pub fn new(sew: Sew, lmul: Lmul) -> VType {
        VType {
            sew,
            lmul,
            ta: true,
            ma: true,
        }
    }

    /// Decodes the low 8 bits of a `vtype` immediate or CSR value.
    ///
    /// Returns `None` for reserved `vsew`/`vlmul` encodings (the hardware
    /// would set `vill`; the simulator treats it as a configuration error).
    #[must_use]
    pub fn from_bits(bits: u64) -> Option<VType> {
        let b = (bits & 0xff) as u32;
        Some(VType {
            lmul: Lmul::from_vlmul(b & 0x7)?,
            sew: Sew::from_vsew((b >> 3) & 0x7)?,
            ta: (b >> 6) & 1 == 1,
            ma: (b >> 7) & 1 == 1,
        })
    }

    /// Encodes into the low 8 bits of a `vtype` value.
    #[must_use]
    pub fn to_bits(self) -> u64 {
        u64::from(
            self.lmul.to_vlmul()
                | (self.sew.to_vsew() << 3)
                | (u32::from(self.ta) << 6)
                | (u32::from(self.ma) << 7),
        )
    }

    /// Maximum vector length `VLMAX = VLEN/SEW * LMUL` for a given VLEN
    /// in bits.
    #[must_use]
    pub fn vlmax(self, vlen_bits: u64) -> u64 {
        let (num, den) = self.lmul.ratio();
        vlen_bits / u64::from(self.sew.bits()) * num / den
    }
}

impl fmt::Display for VType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{},{},{},{}",
            self.sew,
            self.lmul,
            if self.ta { "ta" } else { "tu" },
            if self.ma { "ma" } else { "mu" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtype_bits_round_trip() {
        for sew in [Sew::E8, Sew::E16, Sew::E32, Sew::E64] {
            for lmul in [
                Lmul::MF8,
                Lmul::MF4,
                Lmul::MF2,
                Lmul::M1,
                Lmul::M2,
                Lmul::M4,
                Lmul::M8,
            ] {
                for (ta, ma) in [(false, false), (true, false), (false, true), (true, true)] {
                    let vt = VType { sew, lmul, ta, ma };
                    assert_eq!(VType::from_bits(vt.to_bits()), Some(vt));
                }
            }
        }
    }

    #[test]
    fn reserved_vlmul_rejected() {
        // vlmul = 100 is reserved.
        assert_eq!(VType::from_bits(0b100), None);
    }

    #[test]
    fn vlmax_matches_spec_formula() {
        // VLEN = 1024 (16 lanes of 64 bits, the paper's VPU shape).
        let vt = VType::new(Sew::E64, Lmul::M1);
        assert_eq!(vt.vlmax(1024), 16);
        let vt = VType::new(Sew::E64, Lmul::M8);
        assert_eq!(vt.vlmax(1024), 128);
        let vt = VType::new(Sew::E32, Lmul::M1);
        assert_eq!(vt.vlmax(1024), 32);
        let vt = VType {
            sew: Sew::E64,
            lmul: Lmul::MF2,
            ta: true,
            ma: true,
        };
        assert_eq!(vt.vlmax(1024), 8);
    }

    #[test]
    fn display_is_assembler_syntax() {
        assert_eq!(VType::new(Sew::E64, Lmul::M1).to_string(), "e64,m1,ta,ma");
        let vt = VType {
            sew: Sew::E32,
            lmul: Lmul::M4,
            ta: false,
            ma: false,
        };
        assert_eq!(vt.to_string(), "e32,m4,tu,mu");
    }

    #[test]
    fn sew_sizes() {
        assert_eq!(Sew::E64.bytes(), 8);
        assert_eq!(Sew::E8.bytes(), 1);
        assert_eq!(Sew::from_vsew(9), Some(Sew::E16)); // masked to 3 bits
        assert_eq!(Sew::from_vsew(4), None);
    }

    #[test]
    fn lmul_group_len() {
        assert_eq!(Lmul::M1.group_len(), 1);
        assert_eq!(Lmul::M8.group_len(), 8);
        assert_eq!(Lmul::MF2.group_len(), 1);
    }
}
