//! Superblock fuse plans: static classification of predecoded text
//! for fused multi-instruction retirement.
//!
//! The per-cycle stepper ([`crate::predecode`]) pays a fixed dispatch
//! cost per instruction: hazard check, access probing, miss-path
//! branches, oracle hooks. For straight-line scalar code whose lines
//! are resident and whose registers are clear, none of those branches
//! can fire — so the timing layer can *validate once* and then retire
//! the whole run through a stripped-down fast path that is exact by
//! construction.
//!
//! This module is the static half of that engine. [`build_plans`]
//! walks a predecoded text segment backwards and computes, per
//! instruction slot:
//!
//! * a [`FuseClass`]: is the instruction eligible inside a fused run,
//!   only as a run *terminator* (control flow ends the straight-line
//!   block), or excluded entirely (traps, fences, CSRs, AMOs, vector
//!   ops whose register groups depend on live `LMUL`, predecode
//!   holes)?
//! * a [`MemPlan`] for scalar memory ops: the base register and
//!   offset needed to recompute the access address at validation time
//!   without executing the instruction;
//! * `run_len`: the length of the longest fusable run starting here
//!   (ending at, and including, a terminator).
//!
//! The dynamic half lives in the timing layer
//! (`crates/iss/src/superblock.rs`): it walks a plan at run time,
//! checks cache residency / scoreboard state / in-flight lines, and
//! only then arms the fused path. [`BlockSummary`] aggregates a run's
//! register footprint for diagnostics and tests.

use crate::inst::Inst;
use crate::predecode::{DecodedInst, RegSet};
use crate::reg::XReg;

/// Static plan for one scalar memory access inside a fusable run.
///
/// The fused path must know each access's address *before* executing
/// the run (to prove L1 residency and the absence of text-segment
/// stores). Scalar RISC-V memory ops compute `x[base] + offset`, so
/// the plan carries exactly those two ingredients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPlan {
    /// Base address register.
    pub base: XReg,
    /// Sign-extended byte offset.
    pub offset: i32,
    /// Access size in bytes.
    pub size: u8,
    /// `true` for stores.
    pub write: bool,
}

/// How an instruction may participate in a fused run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseClass {
    /// Plain scalar compute: fusable anywhere in a run.
    Plain,
    /// Scalar memory op: fusable when its [`MemPlan`] address is a
    /// guaranteed L1 hit on a line with no fill in flight.
    Mem(MemPlan),
    /// Control flow (branch/jal/jalr): fusable only as the final
    /// instruction of a run — the run ends at the redirect.
    Terminator,
    /// Never fused: traps, fences, CSR ops, AMOs, vector instructions
    /// (their register groups depend on live `LMUL`), and predecode
    /// holes. Always handled by the per-instruction path.
    Excluded,
}

/// The per-slot fuse plan for one predecoded instruction.
#[derive(Debug, Clone, Copy)]
pub struct FusePlan {
    /// Eligibility class.
    pub class: FuseClass,
    /// Length of the longest fusable run starting at this slot
    /// (including a trailing [`FuseClass::Terminator`]); 0 when the
    /// slot itself is [`FuseClass::Excluded`].
    pub run_len: u32,
}

impl FusePlan {
    /// The plan for an excluded (or invalidated) slot.
    #[must_use]
    pub fn excluded() -> FusePlan {
        FusePlan {
            class: FuseClass::Excluded,
            run_len: 0,
        }
    }
}

/// Classifies one micro-op for fusion. `None` entries (predecode
/// holes) are excluded.
#[must_use]
pub fn classify(slot: Option<&DecodedInst>) -> FuseClass {
    let Some(entry) = slot else {
        return FuseClass::Excluded;
    };
    if entry.lmul_sensitive || entry.vector {
        return FuseClass::Excluded;
    }
    match entry.inst {
        Inst::Lui { .. }
        | Inst::Auipc { .. }
        | Inst::OpImm { .. }
        | Inst::Op { .. }
        | Inst::OpImm32 { .. }
        | Inst::Op32 { .. }
        | Inst::FpOp { .. }
        | Inst::FpFma { .. }
        | Inst::FpCmp { .. }
        | Inst::FpCvt { .. }
        | Inst::FmvXD { .. }
        | Inst::FmvDX { .. } => FuseClass::Plain,
        Inst::Load {
            width, rs1, offset, ..
        } => FuseClass::Mem(MemPlan {
            base: rs1,
            offset,
            size: width.bytes() as u8,
            write: false,
        }),
        Inst::Store {
            width, rs1, offset, ..
        } => FuseClass::Mem(MemPlan {
            base: rs1,
            offset,
            size: width.bytes() as u8,
            write: true,
        }),
        Inst::Fld { rs1, offset, .. } => FuseClass::Mem(MemPlan {
            base: rs1,
            offset,
            size: 8,
            write: false,
        }),
        Inst::Fsd { rs1, offset, .. } => FuseClass::Mem(MemPlan {
            base: rs1,
            offset,
            size: 8,
            write: true,
        }),
        Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } => FuseClass::Terminator,
        // Ecall/Ebreak (traps), Fence, Csr (side effects / counters),
        // Amo (read-modify-write ordering), and everything vector.
        _ => FuseClass::Excluded,
    }
}

/// Builds the per-slot fuse-plan table for a predecoded text segment.
///
/// One backwards pass: a plain/mem slot's run extends its successor's
/// run; a terminator contributes a run of exactly itself; an excluded
/// slot resets the chain.
#[must_use]
pub fn build_plans(insts: &[Option<DecodedInst>]) -> Vec<FusePlan> {
    let mut plans = vec![FusePlan::excluded(); insts.len()];
    for idx in (0..insts.len()).rev() {
        let class = classify(insts[idx].as_ref());
        let run_len = match class {
            FuseClass::Excluded => 0,
            FuseClass::Terminator => 1,
            FuseClass::Plain | FuseClass::Mem(_) => {
                1 + plans.get(idx + 1).map_or(0, |next| next.run_len)
            }
        };
        plans[idx] = FusePlan { class, run_len };
    }
    plans
}

/// Recomputes `run_len` for the slots whose chains flow through
/// `[first, last]` after those slots' classes changed (text-segment
/// invalidation). Walks backwards from `last` until a slot's run
/// length stops changing — chains upstream of that point are
/// unaffected.
pub fn rebuild_runs(plans: &mut [FusePlan], first: usize, last: usize) {
    let last = last.min(plans.len().saturating_sub(1));
    if plans.is_empty() || first >= plans.len() {
        return;
    }
    let mut idx = last;
    loop {
        let run_len = match plans[idx].class {
            FuseClass::Excluded => 0,
            FuseClass::Terminator => 1,
            FuseClass::Plain | FuseClass::Mem(_) => {
                1 + plans.get(idx + 1).map_or(0, |next| next.run_len)
            }
        };
        let changed = plans[idx].run_len != run_len;
        plans[idx].run_len = run_len;
        if idx == 0 || (!changed && idx < first) {
            break;
        }
        idx -= 1;
    }
}

/// Aggregate register/memory footprint of one fusable run — the
/// "superblock summary" used by diagnostics and the property tests
/// (the dynamic validator works per instruction and does not need the
/// union sets).
#[derive(Debug, Clone, Default)]
pub struct BlockSummary {
    /// Union of registers read anywhere in the run.
    pub reads: RegSet,
    /// Union of registers written anywhere in the run.
    pub writes: RegSet,
    /// Static memory-access descriptors, in program order.
    pub mem: Vec<MemPlan>,
    /// Number of instructions in the run.
    pub len: u32,
    /// Minimum cycles to retire the run (one per instruction on this
    /// single-issue model).
    pub min_cycles: u32,
    /// Whether the run ends in a control-flow terminator (a proper
    /// basic block) rather than at an uncertain boundary.
    pub terminated: bool,
}

/// Summarizes the fusable run starting at `start` (bounded by that
/// slot's `run_len`). Returns an empty summary when the slot is
/// excluded.
#[must_use]
pub fn summarize(insts: &[Option<DecodedInst>], plans: &[FusePlan], start: usize) -> BlockSummary {
    let mut summary = BlockSummary::default();
    let Some(plan) = plans.get(start) else {
        return summary;
    };
    let len = plan.run_len as usize;
    for idx in start..(start + len).min(insts.len()) {
        let Some(entry) = insts[idx].as_ref() else {
            break;
        };
        summary.reads.insert_all(&entry.uses);
        summary.writes.insert_all(&entry.defs);
        match plans[idx].class {
            FuseClass::Mem(mem_plan) => summary.mem.push(mem_plan),
            FuseClass::Terminator => summary.terminated = true,
            FuseClass::Plain | FuseClass::Excluded => {}
        }
        summary.len += 1;
    }
    summary.min_cycles = summary.len;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(words: &[u32]) -> Vec<Option<DecodedInst>> {
        crate::predecode::predecode(words)
    }

    const ADDI_RA_1: u32 = 0x0010_0093; // addi ra, zero, 1
    const LD_T1_T0: u32 = 0x0002_b303; // ld t1, 0(t0)
    const SD_T1_T0: u32 = 0x0062_b023; // sd t1, 0(t0)
    const BEQ_BACK: u32 = 0xfe00_0ee3; // beq zero, zero, -4
    const ECALL: u32 = 0x0000_0073;
    const HOLE: u32 = 0xffff_ffff;

    #[test]
    fn classify_covers_the_eligibility_classes() {
        let t = table(&[ADDI_RA_1, LD_T1_T0, SD_T1_T0, BEQ_BACK, ECALL, HOLE]);
        assert_eq!(classify(t[0].as_ref()), FuseClass::Plain);
        match classify(t[1].as_ref()) {
            FuseClass::Mem(plan) => {
                assert!(!plan.write);
                assert_eq!(plan.size, 8);
                assert_eq!(plan.offset, 0);
            }
            other => panic!("ld classified {other:?}"),
        }
        match classify(t[2].as_ref()) {
            FuseClass::Mem(plan) => assert!(plan.write),
            other => panic!("sd classified {other:?}"),
        }
        assert_eq!(classify(t[3].as_ref()), FuseClass::Terminator);
        assert_eq!(classify(t[4].as_ref()), FuseClass::Excluded);
        assert_eq!(classify(t[5].as_ref()), FuseClass::Excluded);
    }

    #[test]
    fn run_lengths_chain_up_to_terminators_and_break_at_excluded() {
        let t = table(&[ADDI_RA_1, LD_T1_T0, BEQ_BACK, ADDI_RA_1, ECALL, ADDI_RA_1]);
        let plans = build_plans(&t);
        assert_eq!(
            plans.iter().map(|p| p.run_len).collect::<Vec<_>>(),
            vec![3, 2, 1, 1, 0, 1]
        );
    }

    #[test]
    fn vector_and_csr_instructions_are_excluded() {
        let vsetvli = DecodedInst::from_inst(Inst::Vsetvli {
            rd: XReg::new(10).expect("a0"),
            rs1: XReg::new(11).expect("a1"),
            vtype: crate::vtype::VType::default(),
        });
        assert_eq!(classify(Some(&vsetvli)), FuseClass::Excluded);
        let csrr = DecodedInst::from_inst(Inst::Csr {
            op: crate::inst::CsrOp::Rw,
            rd: XReg::new(10).expect("a0"),
            csr: crate::csr::Csr::MHARTID,
            src: crate::inst::CsrSrc::Imm(0),
        });
        assert_eq!(classify(Some(&csrr)), FuseClass::Excluded);
    }

    #[test]
    fn rebuild_after_invalidation_shortens_upstream_runs() {
        let mut t = table(&[ADDI_RA_1, ADDI_RA_1, ADDI_RA_1, BEQ_BACK]);
        let mut plans = build_plans(&t);
        assert_eq!(plans[0].run_len, 4);
        // Patch slot 2 into a hole (self-modifying store landed there).
        t[2] = None;
        plans[2] = FusePlan::excluded();
        rebuild_runs(&mut plans, 2, 2);
        assert_eq!(
            plans.iter().map(|p| p.run_len).collect::<Vec<_>>(),
            vec![2, 1, 0, 1]
        );
    }

    #[test]
    fn summary_collects_footprint_and_termination() {
        let t = table(&[LD_T1_T0, ADDI_RA_1, BEQ_BACK]);
        let plans = build_plans(&t);
        let summary = summarize(&t, &plans, 0);
        assert_eq!(summary.len, 3);
        assert_eq!(summary.min_cycles, 3);
        assert!(summary.terminated);
        assert_eq!(summary.mem.len(), 1);
        assert!(summary.reads.x & (1 << 5) != 0, "reads t0");
        assert!(summary.writes.x & (1 << 6) != 0, "writes t1");
        // Excluded start yields an empty summary.
        let empty = summarize(&t, &plans, 99);
        assert_eq!(empty.len, 0);
    }
}
