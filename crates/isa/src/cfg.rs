//! Control-flow graph recovery over a predecoded text segment.
//!
//! [`Cfg::build`] walks the dense micro-op table produced by
//! [`crate::predecode`] from the program entry point, splitting the
//! reachable code into basic blocks and recording every block's exit
//! shape. Direct control flow (`jal`, conditional branches, plain
//! fallthrough) is followed exactly; `jalr` and other indirect
//! transfers are a conservative **bail-out**: the block gets no
//! successors and the graph is flagged [`Cfg::has_indirect`], so
//! downstream analyses (the footprint certifier) know the recovered
//! graph under-approximates the real one. `ecall` terminates a block
//! but keeps its fallthrough edge — whether the edge is actually
//! taken depends on the syscall number, which only the abstract
//! interpreter can decide.
//!
//! On top of the block graph the module computes reverse postorder,
//! immediate dominators (iterative Cooper–Harvey–Kennedy) and natural
//! loops (back edges `latch → head` where `head` dominates `latch`,
//! bodies flooded backwards from the latch).

use crate::inst::Inst;
use crate::predecode::DecodedInst;

/// How a basic block ends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockExit {
    /// Execution continues at the next instruction (the block was
    /// split because its successor is a jump target).
    Fallthrough,
    /// Unconditional direct jump (`jal`; the link write is a normal
    /// register def).
    Jump(u64),
    /// Conditional branch: taken target plus fallthrough.
    Branch {
        /// Branch-taken target PC.
        taken: u64,
        /// Fallthrough PC.
        fall: u64,
    },
    /// `ecall`: may halt the hart (exit syscall) or continue at the
    /// fallthrough, depending on the runtime `a7` value.
    Ecall,
    /// Indirect jump (`jalr`): targets unknown, conservative bail-out
    /// with no successor edges.
    Indirect,
    /// Execution cannot continue: `ebreak`, a decode hole, a transfer
    /// to a PC outside the text segment, or falling off the end.
    Trap,
}

/// One basic block: a maximal straight-line run of reachable
/// instructions.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// Index of the first instruction (into the predecoded table).
    pub start: usize,
    /// Number of instructions in the block (at least 1).
    pub len: usize,
    /// How the block ends.
    pub exit: BlockExit,
    /// Successor block ids, in a fixed order (branch-taken before
    /// fallthrough).
    pub succs: Vec<usize>,
    /// Predecessor block ids, ascending.
    pub preds: Vec<usize>,
    /// True when some continuation of this block leaves the predecoded
    /// text segment (branch or jump to an out-of-text PC, or plain
    /// fallthrough off the end): execution would continue through the
    /// non-predecoded slow path, which the static analysis cannot see.
    /// `ecall` blocks with no in-text fallthrough do *not* set this —
    /// whether their fallthrough is feasible depends on the abstract
    /// `a7` value, so the interpreter decides.
    pub escapes: bool,
}

/// One natural loop.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header block (dominates every block in the body).
    pub head: usize,
    /// Latch blocks (sources of back edges into `head`).
    pub latches: Vec<usize>,
    /// All blocks in the loop body (including head and latches),
    /// ascending.
    pub blocks: Vec<usize>,
}

/// A control-flow graph over the reachable part of a text segment.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks; ids index this vector. Block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Base address of the text segment the instruction indices are
    /// relative to.
    pub base: u64,
    /// Number of words in the predecoded table (for unreachable-code
    /// reporting).
    pub words: usize,
    /// True when some reachable block ends in an indirect jump, so
    /// the graph conservatively under-approximates real control flow.
    pub has_indirect: bool,
    /// True when some reachable path traps: decode hole, `ebreak`,
    /// transfer out of text, or falling off the end of the segment.
    pub has_trap: bool,
    /// True when some reachable block [`BasicBlock::escapes`] the
    /// text segment (or the entry point itself was outside it).
    pub has_escape: bool,
}

impl Cfg {
    /// Recovers the CFG of `insts` (the predecoded table of the text
    /// segment at `base`) starting from `entry`.
    ///
    /// An entry point outside the table yields a graph with a single
    /// trapping block-less CFG (`blocks` empty, `has_trap` set).
    #[must_use]
    pub fn build(insts: &[Option<DecodedInst>], base: u64, entry: u64) -> Cfg {
        let index_of = |pc: u64| -> Option<usize> {
            if pc < base || !(pc - base).is_multiple_of(4) {
                return None;
            }
            let idx = ((pc - base) / 4) as usize;
            (idx < insts.len()).then_some(idx)
        };
        let Some(entry_idx) = index_of(entry) else {
            return Cfg {
                blocks: Vec::new(),
                base,
                words: insts.len(),
                has_indirect: false,
                has_trap: true,
                has_escape: true,
            };
        };

        // Pass 1: discover reachable instructions and leaders.
        let mut reachable = vec![false; insts.len()];
        let mut leader = vec![false; insts.len()];
        leader[entry_idx] = true;
        let mut work = vec![entry_idx];
        let mut has_indirect = false;
        let mut has_trap = false;
        while let Some(start) = work.pop() {
            let mut idx = start;
            loop {
                if reachable[idx] {
                    break;
                }
                reachable[idx] = true;
                let Some(decoded) = &insts[idx] else {
                    has_trap = true;
                    break;
                };
                let pc = base + 4 * idx as u64;
                let mut push_target = |target: u64| match index_of(target) {
                    Some(t) => {
                        if !leader[t] {
                            leader[t] = true;
                        }
                        if !reachable[t] {
                            work.push(t);
                        }
                    }
                    None => has_trap = true,
                };
                match decoded.inst {
                    Inst::Jal { offset, .. } => {
                        push_target(pc.wrapping_add(offset as u64));
                        break;
                    }
                    Inst::Branch { offset, .. } => {
                        push_target(pc.wrapping_add(offset as u64));
                        push_target(pc + 4);
                        break;
                    }
                    Inst::Jalr { .. } => {
                        has_indirect = true;
                        break;
                    }
                    Inst::Ebreak => break,
                    Inst::Ecall => {
                        // The fallthrough is reachable unless the
                        // abstract interpreter proves a7 == exit.
                        push_target(pc + 4);
                        break;
                    }
                    _ => {
                        if idx + 1 < insts.len() {
                            idx += 1;
                        } else {
                            has_trap = true; // falls off the end
                            break;
                        }
                    }
                }
            }
        }

        // Pass 2: materialize the blocks.
        let mut block_starts = Vec::new();
        let mut prev_flows_in = false;
        for idx in 0..insts.len() {
            if !reachable[idx] {
                prev_flows_in = false;
                continue;
            }
            if leader[idx] || !prev_flows_in {
                block_starts.push(idx);
            }
            prev_flows_in = match insts[idx].as_ref().map(|d| &d.inst) {
                Some(
                    Inst::Jal { .. }
                    | Inst::Branch { .. }
                    | Inst::Jalr { .. }
                    | Inst::Ebreak
                    | Inst::Ecall,
                )
                | None => false,
                Some(_) => true,
            };
        }
        let id_of_start = |idx: usize| block_starts.binary_search(&idx).ok();
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(block_starts.len());
        for (b, &start) in block_starts.iter().enumerate() {
            let next_start = block_starts.get(b + 1).copied().unwrap_or(usize::MAX);
            let mut idx = start;
            let (len, exit, escapes) = loop {
                let here = idx - start + 1;
                let Some(decoded) = &insts[idx] else {
                    break (here, BlockExit::Trap, false);
                };
                let pc = base + 4 * idx as u64;
                match decoded.inst {
                    Inst::Jal { offset, .. } => {
                        break (here, BlockExit::Jump(pc.wrapping_add(offset as u64)), false);
                    }
                    Inst::Branch { offset, .. } => {
                        break (
                            here,
                            BlockExit::Branch {
                                taken: pc.wrapping_add(offset as u64),
                                fall: pc + 4,
                            },
                            false,
                        );
                    }
                    Inst::Jalr { .. } => break (here, BlockExit::Indirect, false),
                    Inst::Ebreak => break (here, BlockExit::Trap, false),
                    Inst::Ecall => break (here, BlockExit::Ecall, false),
                    _ => {
                        if idx + 1 == next_start {
                            break (here, BlockExit::Fallthrough, false);
                        }
                        if idx + 1 >= insts.len() {
                            // Falling off the end of text: execution
                            // would continue through non-predecoded
                            // memory.
                            break (here, BlockExit::Trap, true);
                        }
                        idx += 1;
                    }
                }
            };
            blocks.push(BasicBlock {
                start,
                len,
                exit,
                succs: Vec::new(),
                preds: Vec::new(),
                escapes,
            });
        }

        // Pass 3: edges. Targets outside the text (or into holes)
        // were already folded into `has_trap`.
        let target_block = |pc: u64| index_of(pc).and_then(id_of_start);
        for b in 0..blocks.len() {
            let end_idx = blocks[b].start + blocks[b].len - 1;
            let mut succs = Vec::new();
            let mut escaped_edge = false;
            let mut edge = |pc: u64, succs: &mut Vec<usize>| match target_block(pc) {
                Some(t) => succs.push(t),
                None => escaped_edge = true,
            };
            match blocks[b].exit.clone() {
                BlockExit::Fallthrough => {
                    edge(base + 4 * (end_idx as u64 + 1), &mut succs);
                }
                BlockExit::Jump(t) => edge(t, &mut succs),
                BlockExit::Branch { taken, fall } => {
                    edge(taken, &mut succs);
                    edge(fall, &mut succs);
                }
                BlockExit::Ecall => {
                    // An out-of-text fallthrough is only an escape if
                    // the syscall can return; the interpreter decides.
                    succs.extend(target_block(base + 4 * (end_idx as u64 + 1)));
                }
                BlockExit::Indirect | BlockExit::Trap => {}
            }
            for &s in &succs {
                blocks[s].preds.push(b);
            }
            blocks[b].succs = succs;
            blocks[b].escapes |= escaped_edge;
        }
        for block in &mut blocks {
            block.preds.sort_unstable();
            block.preds.dedup();
        }

        let has_escape = blocks.iter().any(|b| b.escapes);
        Cfg {
            blocks,
            base,
            words: insts.len(),
            has_indirect,
            has_trap,
            has_escape,
        }
    }

    /// Block id owning instruction index `idx`, if the instruction is
    /// reachable.
    #[must_use]
    pub fn block_of(&self, idx: usize) -> Option<usize> {
        let b = self.blocks.partition_point(|blk| blk.start <= idx);
        (b > 0 && idx < self.blocks[b - 1].start + self.blocks[b - 1].len).then(|| b - 1)
    }

    /// Instruction indices never covered by a reachable block,
    /// ascending (dead code candidates for `coyote-check`).
    #[must_use]
    pub fn unreachable_words(&self) -> Vec<usize> {
        let mut covered = vec![false; self.words];
        for block in &self.blocks {
            for flag in covered.iter_mut().skip(block.start).take(block.len) {
                *flag = true;
            }
        }
        covered
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (!c).then_some(i))
            .collect()
    }

    /// Reverse postorder over the block graph from the entry block.
    #[must_use]
    pub fn reverse_postorder(&self) -> Vec<usize> {
        if self.blocks.is_empty() {
            return Vec::new();
        }
        let mut state = vec![0_u8; self.blocks.len()]; // 0 new, 1 open, 2 done
        let mut post = Vec::with_capacity(self.blocks.len());
        let mut stack = vec![(0_usize, 0_usize)];
        state[0] = 1;
        while let Some(top) = stack.last_mut() {
            let b = top.0;
            if top.1 < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[top.1];
                top.1 += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators, one per block (`idom[entry] == entry`;
    /// unreachable-from-entry blocks keep `usize::MAX`).
    #[must_use]
    pub fn immediate_dominators(&self) -> Vec<usize> {
        let mut idom = vec![usize::MAX; self.blocks.len()];
        if self.blocks.is_empty() {
            return idom;
        }
        let rpo = self.reverse_postorder();
        let mut rpo_pos = vec![usize::MAX; self.blocks.len()];
        for (pos, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = pos;
        }
        idom[0] = 0;
        let intersect = |idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a];
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &self.blocks[b].preds {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_pos, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// True when `a` dominates `b` under the given idom vector.
    #[must_use]
    pub fn dominates(idom: &[usize], a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == usize::MAX || idom[cur] == cur {
                return cur == a;
            }
            cur = idom[cur];
        }
    }

    /// Natural loops: back edges whose head dominates the latch, one
    /// [`NaturalLoop`] per head (multiple latches merged).
    #[must_use]
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let idom = self.immediate_dominators();
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (latch, block) in self.blocks.iter().enumerate() {
            for &head in &block.succs {
                if idom[latch] == usize::MAX || !Cfg::dominates(&idom, head, latch) {
                    continue;
                }
                // Flood backwards from the latch, stopping at the head.
                let mut body = vec![head, latch];
                let mut stack = vec![latch];
                while let Some(b) = stack.pop() {
                    if b == head {
                        continue;
                    }
                    for &p in &self.blocks[b].preds {
                        if !body.contains(&p) {
                            body.push(p);
                            stack.push(p);
                        }
                    }
                }
                body.sort_unstable();
                body.dedup();
                if let Some(existing) = loops.iter_mut().find(|l| l.head == head) {
                    existing.latches.push(latch);
                    existing.blocks.extend(body);
                    existing.blocks.sort_unstable();
                    existing.blocks.dedup();
                } else {
                    loops.push(NaturalLoop {
                        head,
                        latches: vec![latch],
                        blocks: body,
                    });
                }
            }
        }
        loops.sort_by_key(|l| l.head);
        loops
    }

    /// Block ids that are targets of back edges (loop heads under the
    /// dominator criterion).
    #[must_use]
    pub fn loop_heads(&self) -> Vec<usize> {
        self.natural_loops().iter().map(|l| l.head).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predecode::predecode;

    // Hand-encoded words (cross-checked against the encoder in the
    // roundtrip suite).
    const ADDI_RA_1: u32 = 0x0010_0093; // addi ra, zero, 1
    const BEQ_BACK: u32 = 0xfe00_0ee3; // beq zero, zero, -4
    const ECALL: u32 = 0x0000_0073;
    const JALR_RA: u32 = 0x0000_80e7; // jalr ra, ra, 0

    #[test]
    fn straight_line_is_one_block() {
        let table = predecode(&[ADDI_RA_1, ADDI_RA_1, ECALL]);
        let cfg = Cfg::build(&table, 0x1000, 0x1000);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].len, 3);
        assert_eq!(cfg.blocks[0].exit, BlockExit::Ecall);
        assert!(!cfg.has_indirect);
    }

    #[test]
    fn backward_branch_makes_a_loop() {
        // 0: addi; 1: beq back to 0; 2: ecall (fallthrough of branch)
        let table = predecode(&[ADDI_RA_1, BEQ_BACK, ECALL]);
        let cfg = Cfg::build(&table, 0, 0);
        assert_eq!(cfg.blocks.len(), 2);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].head, 0);
        assert_eq!(loops[0].blocks, vec![0]);
        let idom = cfg.immediate_dominators();
        assert!(Cfg::dominates(&idom, 0, 1));
    }

    #[test]
    fn jalr_is_a_conservative_bail_out() {
        let table = predecode(&[JALR_RA, ADDI_RA_1, ECALL]);
        let cfg = Cfg::build(&table, 0, 0);
        assert!(cfg.has_indirect);
        assert_eq!(cfg.blocks[0].exit, BlockExit::Indirect);
        assert!(cfg.blocks[0].succs.is_empty());
        // The code after the jalr is not provably reachable.
        assert_eq!(cfg.unreachable_words(), vec![1, 2]);
    }

    #[test]
    fn entry_outside_text_traps() {
        let table = predecode(&[ADDI_RA_1]);
        let cfg = Cfg::build(&table, 0x1000, 0x2000);
        assert!(cfg.blocks.is_empty());
        assert!(cfg.has_trap);
    }
}
