//! Shared byte-interval primitives.
//!
//! Three previously independent copies of the same cross-core
//! conflict sweep lived in the parallel orchestrator
//! (`crates/core/src/par.rs`), the fused-window chunk check
//! (`crates/core/src/sim.rs`) and the superblock pairwise checker
//! (`crates/iss/src/superblock.rs`). They are now all expressed over
//! this module: [`AccessInterval`] plus [`sweep_conflicts`] implement
//! the sort-and-sweep overlap test once, and [`ByteIntervalSet`] is
//! the sorted, coalesced byte-range container the static analysis
//! crate builds footprints and text-overlap queries on.
//!
//! The sweep semantics are exactly the ones the orchestrator relies
//! on: two half-open byte ranges conflict when they overlap, belong
//! to *different* owners (cores), and at least one of them is a
//! write. Same-owner overlap and read/read sharing are never
//! conflicts.

/// One half-open byte range `[start, end)` tagged with the core (or
/// other party) that produced it and whether it writes.
///
/// The derived lexicographic order — `start`, then `end`, `owner`,
/// `write` — is what [`sweep_conflicts`] sorts by; it matches the
/// tuple ordering the duplicated sweeps historically used, so the
/// deduplication is behaviour-preserving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessInterval {
    /// First byte touched.
    pub start: u64,
    /// One past the last byte touched.
    pub end: u64,
    /// Identifier of the party making the access (core index).
    pub owner: usize,
    /// `true` for a store, `false` for a load.
    pub write: bool,
}

impl AccessInterval {
    /// Builds the interval for an access of `size` bytes at `addr`.
    #[must_use]
    pub fn new(addr: u64, size: u64, owner: usize, write: bool) -> AccessInterval {
        AccessInterval {
            start: addr,
            end: addr.saturating_add(size),
            owner,
            write,
        }
    }
}

/// Sort-and-sweep cross-owner conflict test.
///
/// Sorts `intervals` in place, then sweeps left to right keeping the
/// set of still-open ranges in `open` (a caller-provided scratch
/// vector so hot paths can reuse the allocation; it is cleared on
/// entry). Returns `true` iff some pair of overlapping intervals has
/// different owners and at least one write.
pub fn sweep_conflicts(
    intervals: &mut [AccessInterval],
    open: &mut Vec<(u64, usize, bool)>,
) -> bool {
    intervals.sort_unstable();
    open.clear();
    for &AccessInterval {
        start,
        end,
        owner,
        write,
    } in intervals.iter()
    {
        open.retain(|&(o_end, _, _)| o_end > start);
        if open
            .iter()
            .any(|&(_, o_owner, o_write)| o_owner != owner && (o_write || write))
        {
            return true;
        }
        open.push((end, owner, write));
    }
    false
}

/// A sorted, coalesced set of half-open byte ranges.
///
/// Ranges are kept non-empty, non-overlapping, non-adjacent and in
/// ascending order, so membership and intersection queries are linear
/// two-pointer walks and the representation is canonical (two sets
/// are equal iff their range vectors are equal).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ByteIntervalSet {
    ranges: Vec<(u64, u64)>,
}

impl ByteIntervalSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> ByteIntervalSet {
        ByteIntervalSet::default()
    }

    /// True when no bytes are in the set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The coalesced ranges, ascending.
    #[must_use]
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Total number of bytes covered.
    #[must_use]
    pub fn byte_count(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Inserts `[start, end)`, merging with any ranges it touches.
    /// Empty input ranges are ignored.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // First range whose end could touch the new one.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        // One past the last range whose start touches the new one.
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ranges.insert(lo, (start, end));
            return;
        }
        let merged_start = start.min(self.ranges[lo].0);
        let merged_end = end.max(self.ranges[hi - 1].1);
        self.ranges.drain(lo..hi);
        self.ranges.insert(lo, (merged_start, merged_end));
    }

    /// True when `addr` is in the set.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let idx = self.ranges.partition_point(|&(_, e)| e <= addr);
        self.ranges.get(idx).is_some_and(|&(s, _)| s <= addr)
    }

    /// True when `[start, end)` shares at least one byte with the set.
    #[must_use]
    pub fn overlaps_range(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let idx = self.ranges.partition_point(|&(_, e)| e <= start);
        self.ranges.get(idx).is_some_and(|&(s, _)| s < end)
    }

    /// True when the two sets share at least one byte.
    #[must_use]
    pub fn intersects(&self, other: &ByteIntervalSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (a_s, a_e) = self.ranges[i];
            let (b_s, b_e) = other.ranges[j];
            if a_s < b_e && b_s < a_e {
                return true;
            }
            if a_e <= b_e {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: u64, end: u64, owner: usize, write: bool) -> AccessInterval {
        AccessInterval {
            start,
            end,
            owner,
            write,
        }
    }

    #[test]
    fn sweep_matches_orchestrator_semantics() {
        let mut open = Vec::new();
        // Same owner: never a conflict, even write/write.
        let mut same = vec![iv(0, 8, 0, true), iv(4, 12, 0, true)];
        assert!(!sweep_conflicts(&mut same, &mut open));
        // Read/read across owners: fine.
        let mut rr = vec![iv(0, 8, 0, false), iv(4, 12, 1, false)];
        assert!(!sweep_conflicts(&mut rr, &mut open));
        // Read/write overlap across owners: conflict.
        let mut rw = vec![iv(0, 8, 0, false), iv(7, 8, 1, true)];
        assert!(sweep_conflicts(&mut rw, &mut open));
        // Byte-adjacent (touching, not overlapping): fine.
        let mut adj = vec![iv(0, 8, 0, true), iv(8, 16, 1, true)];
        assert!(!sweep_conflicts(&mut adj, &mut open));
    }

    #[test]
    fn interval_set_coalesces_and_queries() {
        let mut set = ByteIntervalSet::new();
        set.insert(16, 24);
        set.insert(0, 8);
        set.insert(8, 16); // bridges the gap
        assert_eq!(set.ranges(), &[(0, 24)]);
        assert_eq!(set.byte_count(), 24);
        set.insert(40, 48);
        assert!(set.contains(23));
        assert!(!set.contains(24));
        assert!(set.overlaps_range(20, 30));
        assert!(!set.overlaps_range(24, 40));

        let mut other = ByteIntervalSet::new();
        other.insert(30, 41);
        assert!(set.intersects(&other));
        let mut disjoint = ByteIntervalSet::new();
        disjoint.insert(24, 40);
        assert!(!set.intersects(&disjoint));
    }

    #[test]
    fn empty_inserts_are_ignored() {
        let mut set = ByteIntervalSet::new();
        set.insert(8, 8);
        assert!(set.is_empty());
        assert!(!set.overlaps_range(0, 0));
    }
}
