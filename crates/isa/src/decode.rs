//! Instruction decoder: 32-bit machine code → [`Inst`].
//!
//! Exact mirror of [`mod@crate::encode`]; the pair is property-tested as
//! inverses over the supported instruction space. Rounding-mode fields of
//! floating-point instructions are accepted but not represented (the
//! simulator always computes with the canonical rounding the encoder
//! emits).

use std::fmt;

use crate::csr::Csr;
use crate::inst::{
    AluOp, AluWOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpCvtOp, FpOp, Inst, MemWidth,
    VAddrMode, VCmpOp, VFCmpOp, VFScalar, VFpOp, VIntOp, VMaskOp, VMulOp, VScalar,
};
use crate::reg::{FReg, VReg, XReg};
use crate::vtype::{Sew, VType};

/// Error produced when a 32-bit word is not a supported instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd_x(word: u32) -> XReg {
    XReg::from_bits(word >> 7)
}
fn rs1_x(word: u32) -> XReg {
    XReg::from_bits(word >> 15)
}
fn rs2_x(word: u32) -> XReg {
    XReg::from_bits(word >> 20)
}
fn rd_f(word: u32) -> FReg {
    FReg::from_bits(word >> 7)
}
fn rs1_f(word: u32) -> FReg {
    FReg::from_bits(word >> 15)
}
fn rs2_f(word: u32) -> FReg {
    FReg::from_bits(word >> 20)
}
fn rd_v(word: u32) -> VReg {
    VReg::from_bits(word >> 7)
}
fn vs1(word: u32) -> VReg {
    VReg::from_bits(word >> 15)
}
fn vs2(word: u32) -> VReg {
    VReg::from_bits(word >> 20)
}
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}
fn funct7(word: u32) -> u32 {
    word >> 25
}

fn imm_i(word: u32) -> i64 {
    i64::from((word as i32) >> 20)
}

fn imm_s(word: u32) -> i64 {
    let hi = ((word as i32) >> 25) << 5;
    let lo = ((word >> 7) & 0x1f) as i32;
    i64::from(hi | lo)
}

fn imm_b(word: u32) -> i32 {
    let sign = ((word as i32) >> 31) << 12;
    let b11 = (((word >> 7) & 1) << 11) as i32;
    let b10_5 = (((word >> 25) & 0x3f) << 5) as i32;
    let b4_1 = (((word >> 8) & 0xf) << 1) as i32;
    sign | b11 | b10_5 | b4_1
}

fn imm_u(word: u32) -> i64 {
    i64::from((word & 0xffff_f000) as i32)
}

fn imm_j(word: u32) -> i32 {
    let sign = ((word as i32) >> 31) << 20;
    let b19_12 = ((word >> 12) & 0xff) << 12;
    let b11 = ((word >> 20) & 1) << 11;
    let b10_1 = ((word >> 21) & 0x3ff) << 1;
    sign | (b19_12 | b11 | b10_1) as i32
}

fn err(word: u32) -> Result<Inst, DecodeError> {
    Err(DecodeError { word })
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not in the supported subset
/// (RV64IM, A-subset, Zicsr, D, V-subset).
///
/// # Examples
///
/// ```
/// # use coyote_isa::{decode::decode, inst::{Inst, AluOp}, reg::XReg};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = decode(0x0010_0093)?; // addi ra, zero, 1
/// assert_eq!(
///     inst,
///     Inst::OpImm { op: AluOp::Add, rd: XReg::RA, rs1: XReg::ZERO, imm: 1 }
/// );
/// # Ok(())
/// # }
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    match word & 0x7f {
        0b0110111 => Ok(Inst::Lui {
            rd: rd_x(word),
            imm: imm_u(word),
        }),
        0b0010111 => Ok(Inst::Auipc {
            rd: rd_x(word),
            imm: imm_u(word),
        }),
        0b1101111 => Ok(Inst::Jal {
            rd: rd_x(word),
            offset: imm_j(word),
        }),
        0b1100111 => {
            if funct3(word) != 0 {
                return err(word);
            }
            Ok(Inst::Jalr {
                rd: rd_x(word),
                rs1: rs1_x(word),
                offset: imm_i(word) as i32,
            })
        }
        0b1100011 => {
            let op = match funct3(word) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return err(word),
            };
            Ok(Inst::Branch {
                op,
                rs1: rs1_x(word),
                rs2: rs2_x(word),
                offset: imm_b(word),
            })
        }
        0b0000011 => {
            let (width, signed) = match funct3(word) {
                0b000 => (MemWidth::B, true),
                0b001 => (MemWidth::H, true),
                0b010 => (MemWidth::W, true),
                0b011 => (MemWidth::D, true),
                0b100 => (MemWidth::B, false),
                0b101 => (MemWidth::H, false),
                0b110 => (MemWidth::W, false),
                _ => return err(word),
            };
            Ok(Inst::Load {
                width,
                signed,
                rd: rd_x(word),
                rs1: rs1_x(word),
                offset: imm_i(word) as i32,
            })
        }
        0b0100011 => {
            let width = match funct3(word) {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                0b011 => MemWidth::D,
                _ => return err(word),
            };
            Ok(Inst::Store {
                width,
                rs2: rs2_x(word),
                rs1: rs1_x(word),
                offset: imm_s(word) as i32,
            })
        }
        0b0010011 => {
            let rd = rd_x(word);
            let rs1 = rs1_x(word);
            let f3 = funct3(word);
            let op = match f3 {
                0b000 => AluOp::Add,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                0b001 | 0b101 => {
                    let funct6 = word >> 26;
                    let sh = i64::from((word >> 20) & 0x3f);
                    let op = match (f3, funct6) {
                        (0b001, 0b000000) => AluOp::Sll,
                        (0b101, 0b000000) => AluOp::Srl,
                        (0b101, 0b010000) => AluOp::Sra,
                        _ => return err(word),
                    };
                    return Ok(Inst::OpImm {
                        op,
                        rd,
                        rs1,
                        imm: sh,
                    });
                }
                _ => return err(word),
            };
            Ok(Inst::OpImm {
                op,
                rd,
                rs1,
                imm: imm_i(word),
            })
        }
        0b0110011 => {
            let op = match (funct7(word), funct3(word)) {
                (0b0000000, 0b000) => AluOp::Add,
                (0b0100000, 0b000) => AluOp::Sub,
                (0b0000000, 0b001) => AluOp::Sll,
                (0b0000000, 0b010) => AluOp::Slt,
                (0b0000000, 0b011) => AluOp::Sltu,
                (0b0000000, 0b100) => AluOp::Xor,
                (0b0000000, 0b101) => AluOp::Srl,
                (0b0100000, 0b101) => AluOp::Sra,
                (0b0000000, 0b110) => AluOp::Or,
                (0b0000000, 0b111) => AluOp::And,
                (0b0000001, 0b000) => AluOp::Mul,
                (0b0000001, 0b001) => AluOp::Mulh,
                (0b0000001, 0b010) => AluOp::Mulhsu,
                (0b0000001, 0b011) => AluOp::Mulhu,
                (0b0000001, 0b100) => AluOp::Div,
                (0b0000001, 0b101) => AluOp::Divu,
                (0b0000001, 0b110) => AluOp::Rem,
                (0b0000001, 0b111) => AluOp::Remu,
                _ => return err(word),
            };
            Ok(Inst::Op {
                op,
                rd: rd_x(word),
                rs1: rs1_x(word),
                rs2: rs2_x(word),
            })
        }
        0b0011011 => {
            let rd = rd_x(word);
            let rs1 = rs1_x(word);
            match funct3(word) {
                0b000 => Ok(Inst::OpImm32 {
                    op: AluWOp::Addw,
                    rd,
                    rs1,
                    imm: imm_i(word),
                }),
                0b001 | 0b101 => {
                    let sh = i64::from((word >> 20) & 0x1f);
                    let op = match (funct3(word), funct7(word)) {
                        (0b001, 0b0000000) => AluWOp::Sllw,
                        (0b101, 0b0000000) => AluWOp::Srlw,
                        (0b101, 0b0100000) => AluWOp::Sraw,
                        _ => return err(word),
                    };
                    Ok(Inst::OpImm32 {
                        op,
                        rd,
                        rs1,
                        imm: sh,
                    })
                }
                _ => err(word),
            }
        }
        0b0111011 => {
            let op = match (funct7(word), funct3(word)) {
                (0b0000000, 0b000) => AluWOp::Addw,
                (0b0100000, 0b000) => AluWOp::Subw,
                (0b0000000, 0b001) => AluWOp::Sllw,
                (0b0000000, 0b101) => AluWOp::Srlw,
                (0b0100000, 0b101) => AluWOp::Sraw,
                (0b0000001, 0b000) => AluWOp::Mulw,
                (0b0000001, 0b100) => AluWOp::Divw,
                (0b0000001, 0b101) => AluWOp::Divuw,
                (0b0000001, 0b110) => AluWOp::Remw,
                (0b0000001, 0b111) => AluWOp::Remuw,
                _ => return err(word),
            };
            Ok(Inst::Op32 {
                op,
                rd: rd_x(word),
                rs1: rs1_x(word),
                rs2: rs2_x(word),
            })
        }
        0b0001111 => Ok(Inst::Fence),
        0b1110011 => match funct3(word) {
            0b000 => match word {
                0x0000_0073 => Ok(Inst::Ecall),
                0x0010_0073 => Ok(Inst::Ebreak),
                _ => err(word),
            },
            f3 => {
                let op = match f3 & 0b011 {
                    0b01 => CsrOp::Rw,
                    0b10 => CsrOp::Rs,
                    0b11 => CsrOp::Rc,
                    _ => return err(word),
                };
                let field = (word >> 15) & 0x1f;
                let src = if f3 & 0b100 != 0 {
                    CsrSrc::Imm(field as u8)
                } else {
                    CsrSrc::Reg(XReg::from_bits(field))
                };
                Ok(Inst::Csr {
                    op,
                    rd: rd_x(word),
                    csr: Csr::from_bits(word >> 20),
                    src,
                })
            }
        },
        0b0101111 => {
            let width = match funct3(word) {
                0b010 => MemWidth::W,
                0b011 => MemWidth::D,
                _ => return err(word),
            };
            let op = match word >> 27 {
                0b00010 => AmoOp::Lr,
                0b00011 => AmoOp::Sc,
                0b00001 => AmoOp::Swap,
                0b00000 => AmoOp::Add,
                0b00100 => AmoOp::Xor,
                0b01100 => AmoOp::And,
                0b01000 => AmoOp::Or,
                0b10000 => AmoOp::Min,
                0b10100 => AmoOp::Max,
                0b11000 => AmoOp::Minu,
                0b11100 => AmoOp::Maxu,
                _ => return err(word),
            };
            if op == AmoOp::Lr && rs2_x(word) != XReg::ZERO {
                return err(word);
            }
            Ok(Inst::Amo {
                op,
                width,
                rd: rd_x(word),
                rs1: rs1_x(word),
                rs2: rs2_x(word),
            })
        }
        0b0000111 => decode_load_fp(word),
        0b0100111 => decode_store_fp(word),
        0b1010011 => decode_op_fp(word),
        0b1000011 => decode_fma(word, FmaOp::Madd),
        0b1000111 => decode_fma(word, FmaOp::Msub),
        0b1001011 => decode_fma(word, FmaOp::Nmsub),
        0b1001111 => decode_fma(word, FmaOp::Nmadd),
        0b1010111 => decode_op_v(word),
        _ => err(word),
    }
}

fn decode_vmem_eew(width: u32) -> Option<Sew> {
    match width {
        0b000 => Some(Sew::E8),
        0b101 => Some(Sew::E16),
        0b110 => Some(Sew::E32),
        0b111 => Some(Sew::E64),
        _ => None,
    }
}

fn decode_vmem_mode(word: u32) -> Option<VAddrMode> {
    let mop = (word >> 26) & 0b11;
    let f24_20 = (word >> 20) & 0x1f;
    match mop {
        0b00 if f24_20 == 0 => Some(VAddrMode::Unit),
        0b01 => Some(VAddrMode::Indexed(VReg::from_bits(f24_20))),
        0b10 => Some(VAddrMode::Strided(XReg::from_bits(f24_20))),
        _ => None,
    }
}

fn decode_load_fp(word: u32) -> Result<Inst, DecodeError> {
    // The width field discriminates scalar FP loads (010/011/100) from
    // vector loads (000/101/110/111) on the shared LOAD-FP opcode.
    match funct3(word) {
        0b011 => Ok(Inst::Fld {
            rd: rd_f(word),
            rs1: rs1_x(word),
            offset: imm_i(word) as i32,
        }),
        width @ (0b000 | 0b101 | 0b110 | 0b111) => {
            let eew = decode_vmem_eew(width).ok_or(DecodeError { word })?;
            if (word >> 28) != 0 {
                return err(word); // nf/mew unsupported
            }
            let mode = decode_vmem_mode(word).ok_or(DecodeError { word })?;
            Ok(Inst::VLoad {
                vd: rd_v(word),
                rs1: rs1_x(word),
                mode,
                eew,
                vm: (word >> 25) & 1 == 1,
            })
        }
        _ => err(word),
    }
}

fn decode_store_fp(word: u32) -> Result<Inst, DecodeError> {
    match funct3(word) {
        0b011 => Ok(Inst::Fsd {
            rs2: rs2_f(word),
            rs1: rs1_x(word),
            offset: imm_s(word) as i32,
        }),
        width @ (0b000 | 0b101 | 0b110 | 0b111) => {
            let eew = decode_vmem_eew(width).ok_or(DecodeError { word })?;
            if (word >> 28) != 0 {
                return err(word);
            }
            let mode = decode_vmem_mode(word).ok_or(DecodeError { word })?;
            Ok(Inst::VStore {
                vs3: rd_v(word),
                rs1: rs1_x(word),
                mode,
                eew,
                vm: (word >> 25) & 1 == 1,
            })
        }
        _ => err(word),
    }
}

fn decode_op_fp(word: u32) -> Result<Inst, DecodeError> {
    let f7 = funct7(word);
    let rm = funct3(word);
    match f7 {
        0b0000001 => Ok(Inst::FpOp {
            op: FpOp::Add,
            rd: rd_f(word),
            rs1: rs1_f(word),
            rs2: rs2_f(word),
        }),
        0b0000101 => Ok(Inst::FpOp {
            op: FpOp::Sub,
            rd: rd_f(word),
            rs1: rs1_f(word),
            rs2: rs2_f(word),
        }),
        0b0001001 => Ok(Inst::FpOp {
            op: FpOp::Mul,
            rd: rd_f(word),
            rs1: rs1_f(word),
            rs2: rs2_f(word),
        }),
        0b0001101 => Ok(Inst::FpOp {
            op: FpOp::Div,
            rd: rd_f(word),
            rs1: rs1_f(word),
            rs2: rs2_f(word),
        }),
        0b0010001 => {
            let op = match rm {
                0b000 => FpOp::Sgnj,
                0b001 => FpOp::Sgnjn,
                0b010 => FpOp::Sgnjx,
                _ => return err(word),
            };
            Ok(Inst::FpOp {
                op,
                rd: rd_f(word),
                rs1: rs1_f(word),
                rs2: rs2_f(word),
            })
        }
        0b0010101 => {
            let op = match rm {
                0b000 => FpOp::Min,
                0b001 => FpOp::Max,
                _ => return err(word),
            };
            Ok(Inst::FpOp {
                op,
                rd: rd_f(word),
                rs1: rs1_f(word),
                rs2: rs2_f(word),
            })
        }
        0b1010001 => {
            let op = match rm {
                0b010 => FpCmpOp::Eq,
                0b001 => FpCmpOp::Lt,
                0b000 => FpCmpOp::Le,
                _ => return err(word),
            };
            Ok(Inst::FpCmp {
                op,
                rd: rd_x(word),
                rs1: rs1_f(word),
                rs2: rs2_f(word),
            })
        }
        0b1100001 => {
            let op = match (word >> 20) & 0x1f {
                0b00000 => FpCvtOp::WFromD,
                0b00010 => FpCvtOp::LFromD,
                0b00011 => FpCvtOp::LuFromD,
                _ => return err(word),
            };
            Ok(Inst::FpCvt {
                op,
                rd: ((word >> 7) & 0x1f) as u8,
                rs1: ((word >> 15) & 0x1f) as u8,
            })
        }
        0b1101001 => {
            let op = match (word >> 20) & 0x1f {
                0b00000 => FpCvtOp::DFromW,
                0b00010 => FpCvtOp::DFromL,
                0b00011 => FpCvtOp::DFromLu,
                _ => return err(word),
            };
            Ok(Inst::FpCvt {
                op,
                rd: ((word >> 7) & 0x1f) as u8,
                rs1: ((word >> 15) & 0x1f) as u8,
            })
        }
        0b1110001 if rm == 0b000 && (word >> 20) & 0x1f == 0 => Ok(Inst::FmvXD {
            rd: rd_x(word),
            rs1: rs1_f(word),
        }),
        0b1111001 if rm == 0b000 && (word >> 20) & 0x1f == 0 => Ok(Inst::FmvDX {
            rd: rd_f(word),
            rs1: rs1_x(word),
        }),
        _ => err(word),
    }
}

fn decode_fma(word: u32, op: FmaOp) -> Result<Inst, DecodeError> {
    if (word >> 25) & 0b11 != 0b01 {
        return err(word); // only the D format is supported
    }
    Ok(Inst::FpFma {
        op,
        rd: rd_f(word),
        rs1: rs1_f(word),
        rs2: rs2_f(word),
        rs3: FReg::from_bits(word >> 27),
    })
}

fn decode_op_v(word: u32) -> Result<Inst, DecodeError> {
    let f3 = funct3(word);
    if f3 == 0b111 {
        return decode_vset(word);
    }
    let funct6 = word >> 26;
    let vm = (word >> 25) & 1 == 1;
    let vd = rd_v(word);
    let v2 = vs2(word);
    let f19_15 = (word >> 15) & 0x1f;

    let vint = |funct6: u32| -> Option<VIntOp> {
        Some(match funct6 {
            0b000000 => VIntOp::Add,
            0b000010 => VIntOp::Sub,
            0b000011 => VIntOp::Rsub,
            0b000100 => VIntOp::Minu,
            0b000101 => VIntOp::Min,
            0b000110 => VIntOp::Maxu,
            0b000111 => VIntOp::Max,
            0b001001 => VIntOp::And,
            0b001010 => VIntOp::Or,
            0b001011 => VIntOp::Xor,
            0b100101 => VIntOp::Sll,
            0b101000 => VIntOp::Srl,
            0b101001 => VIntOp::Sra,
            _ => return None,
        })
    };
    let vmul = |funct6: u32| -> Option<VMulOp> {
        Some(match funct6 {
            0b100000 => VMulOp::Divu,
            0b100001 => VMulOp::Div,
            0b100010 => VMulOp::Remu,
            0b100011 => VMulOp::Rem,
            0b100100 => VMulOp::Mulhu,
            0b100101 => VMulOp::Mul,
            0b100111 => VMulOp::Mulh,
            0b101101 => VMulOp::Macc,
            _ => return None,
        })
    };
    let vcmp = |funct6: u32| -> Option<VCmpOp> {
        Some(match funct6 {
            0b011000 => VCmpOp::Eq,
            0b011001 => VCmpOp::Ne,
            0b011010 => VCmpOp::Ltu,
            0b011011 => VCmpOp::Lt,
            0b011100 => VCmpOp::Leu,
            0b011101 => VCmpOp::Le,
            0b011110 => VCmpOp::Gtu,
            0b011111 => VCmpOp::Gt,
            _ => return None,
        })
    };
    let vfcmp = |funct6: u32| -> Option<VFCmpOp> {
        Some(match funct6 {
            0b011000 => VFCmpOp::Eq,
            0b011001 => VFCmpOp::Le,
            0b011011 => VFCmpOp::Lt,
            0b011100 => VFCmpOp::Ne,
            0b011101 => VFCmpOp::Gt,
            0b011111 => VFCmpOp::Ge,
            _ => return None,
        })
    };
    let vmask = |funct6: u32| -> Option<VMaskOp> {
        Some(match funct6 {
            0b011000 => VMaskOp::AndNot,
            0b011001 => VMaskOp::And,
            0b011010 => VMaskOp::Or,
            0b011011 => VMaskOp::Xor,
            0b011100 => VMaskOp::OrNot,
            0b011101 => VMaskOp::Nand,
            0b011110 => VMaskOp::Nor,
            0b011111 => VMaskOp::Xnor,
            _ => return None,
        })
    };
    let vfp = |funct6: u32| -> Option<VFpOp> {
        Some(match funct6 {
            0b000000 => VFpOp::Add,
            0b000010 => VFpOp::Sub,
            0b000100 => VFpOp::Min,
            0b000110 => VFpOp::Max,
            0b001000 => VFpOp::Sgnj,
            0b100000 => VFpOp::Div,
            0b100100 => VFpOp::Mul,
            0b101100 => VFpOp::Macc,
            _ => return None,
        })
    };

    match f3 {
        0b000 => {
            // OPIVV
            if funct6 == 0b010111 {
                if vm {
                    if v2 == VReg::V0 {
                        return Ok(Inst::VMvVV { vd, vs1: vs1(word) });
                    }
                    return err(word);
                }
                return Ok(Inst::VMerge {
                    vd,
                    vs2: v2,
                    src: VScalar::Vector(vs1(word)),
                });
            }
            if let Some(op) = vcmp(funct6) {
                if matches!(op, VCmpOp::Gt | VCmpOp::Gtu) {
                    return err(word);
                }
                return Ok(Inst::VMaskCmp {
                    op,
                    vd,
                    vs2: v2,
                    src: VScalar::Vector(vs1(word)),
                    vm,
                });
            }
            let op = vint(funct6).ok_or(DecodeError { word })?;
            if op == VIntOp::Rsub {
                return err(word);
            }
            Ok(Inst::VIntOp {
                op,
                vd,
                vs2: v2,
                src: VScalar::Vector(vs1(word)),
                vm,
            })
        }
        0b100 => {
            // OPIVX
            if funct6 == 0b010111 {
                if vm {
                    if v2 == VReg::V0 {
                        return Ok(Inst::VMvVX {
                            vd,
                            rs1: rs1_x(word),
                        });
                    }
                    return err(word);
                }
                return Ok(Inst::VMerge {
                    vd,
                    vs2: v2,
                    src: VScalar::Xreg(rs1_x(word)),
                });
            }
            if let Some(op) = vcmp(funct6) {
                return Ok(Inst::VMaskCmp {
                    op,
                    vd,
                    vs2: v2,
                    src: VScalar::Xreg(rs1_x(word)),
                    vm,
                });
            }
            let op = vint(funct6).ok_or(DecodeError { word })?;
            Ok(Inst::VIntOp {
                op,
                vd,
                vs2: v2,
                src: VScalar::Xreg(rs1_x(word)),
                vm,
            })
        }
        0b011 => {
            // OPIVI
            let imm_field = f19_15;
            if funct6 == 0b010111 {
                if vm {
                    if v2 == VReg::V0 {
                        return Ok(Inst::VMvVI {
                            vd,
                            imm: sext5(imm_field),
                        });
                    }
                    return err(word);
                }
                return Ok(Inst::VMergeImm {
                    vd,
                    vs2: v2,
                    imm: sext5(imm_field),
                });
            }
            if let Some(op) = vcmp(funct6) {
                if matches!(op, VCmpOp::Lt | VCmpOp::Ltu) {
                    return err(word);
                }
                return Ok(Inst::VMaskCmpImm {
                    op,
                    vd,
                    vs2: v2,
                    imm: sext5(imm_field),
                    vm,
                });
            }
            let op = vint(funct6).ok_or(DecodeError { word })?;
            let imm = if matches!(op, VIntOp::Sll | VIntOp::Srl | VIntOp::Sra) {
                imm_field as i8 // unsigned 5-bit shift amount
            } else {
                sext5(imm_field)
            };
            match op {
                VIntOp::Sub | VIntOp::Min | VIntOp::Max | VIntOp::Minu | VIntOp::Maxu => err(word),
                _ => Ok(Inst::VIntOpImm {
                    op,
                    vd,
                    vs2: v2,
                    imm,
                    vm,
                }),
            }
        }
        0b010 => {
            // OPMVV
            match funct6 {
                0b000000 => Ok(Inst::VRedSum {
                    vd,
                    vs2: v2,
                    vs1: vs1(word),
                    vm,
                }),
                0b010000 if f19_15 == 0 => Ok(Inst::VMvXS {
                    rd: rd_x(word),
                    vs2: v2,
                }),
                0b010000 if f19_15 == 0b10000 => Ok(Inst::Vcpop {
                    rd: rd_x(word),
                    vs2: v2,
                    vm,
                }),
                0b010000 if f19_15 == 0b10001 => Ok(Inst::Vfirst {
                    rd: rd_x(word),
                    vs2: v2,
                    vm,
                }),
                0b010100 if f19_15 == 0b10001 && v2 == VReg::V0 => Ok(Inst::Vid { vd, vm }),
                _ if vm && vmask(funct6).is_some() => Ok(Inst::VMaskLogical {
                    op: vmask(funct6).expect("checked"),
                    vd,
                    vs2: v2,
                    vs1: vs1(word),
                }),
                _ => {
                    let op = vmul(funct6).ok_or(DecodeError { word })?;
                    Ok(Inst::VMulOp {
                        op,
                        vd,
                        vs2: v2,
                        src: VScalar::Vector(vs1(word)),
                        vm,
                    })
                }
            }
        }
        0b110 => {
            // OPMVX
            match funct6 {
                0b010000 if v2 == VReg::V0 && vm => Ok(Inst::VMvSX {
                    vd,
                    rs1: rs1_x(word),
                }),
                _ => {
                    let op = vmul(funct6).ok_or(DecodeError { word })?;
                    Ok(Inst::VMulOp {
                        op,
                        vd,
                        vs2: v2,
                        src: VScalar::Xreg(rs1_x(word)),
                        vm,
                    })
                }
            }
        }
        0b001 => {
            // OPFVV
            match funct6 {
                0b000001 => Ok(Inst::VFRedSum {
                    vd,
                    vs2: v2,
                    vs1: vs1(word),
                    vm,
                }),
                0b010000 if f19_15 == 0 => Ok(Inst::VFMvFS {
                    rd: rd_f(word),
                    vs2: v2,
                }),
                _ if vfcmp(funct6).is_some() => {
                    let op = vfcmp(funct6).expect("checked");
                    if matches!(op, VFCmpOp::Gt | VFCmpOp::Ge) {
                        return err(word);
                    }
                    Ok(Inst::VFMaskCmp {
                        op,
                        vd,
                        vs2: v2,
                        src: VFScalar::Vector(vs1(word)),
                        vm,
                    })
                }
                _ => {
                    let op = vfp(funct6).ok_or(DecodeError { word })?;
                    Ok(Inst::VFpOp {
                        op,
                        vd,
                        vs2: v2,
                        src: VFScalar::Vector(vs1(word)),
                        vm,
                    })
                }
            }
        }
        0b101 => {
            // OPFVF
            match funct6 {
                0b010000 if v2 == VReg::V0 && vm => Ok(Inst::VFMvSF {
                    vd,
                    rs1: rs1_f(word),
                }),
                0b010111 if v2 == VReg::V0 && vm => Ok(Inst::VFMvVF {
                    vd,
                    rs1: rs1_f(word),
                }),
                0b010111 if !vm => Ok(Inst::VFMerge {
                    vd,
                    vs2: v2,
                    rs1: rs1_f(word),
                }),
                _ if vfcmp(funct6).is_some() => Ok(Inst::VFMaskCmp {
                    op: vfcmp(funct6).expect("checked"),
                    vd,
                    vs2: v2,
                    src: VFScalar::Freg(rs1_f(word)),
                    vm,
                }),
                _ => {
                    let op = vfp(funct6).ok_or(DecodeError { word })?;
                    Ok(Inst::VFpOp {
                        op,
                        vd,
                        vs2: v2,
                        src: VFScalar::Freg(rs1_f(word)),
                        vm,
                    })
                }
            }
        }
        _ => err(word),
    }
}

fn sext5(field: u32) -> i8 {
    (((field << 3) as u8) as i8) >> 3
}

fn decode_vset(word: u32) -> Result<Inst, DecodeError> {
    let rd = rd_x(word);
    if word >> 31 == 0 {
        let vtype =
            VType::from_bits(u64::from((word >> 20) & 0x7ff)).ok_or(DecodeError { word })?;
        Ok(Inst::Vsetvli {
            rd,
            rs1: rs1_x(word),
            vtype,
        })
    } else if word >> 30 == 0b11 {
        let vtype =
            VType::from_bits(u64::from((word >> 20) & 0x3ff)).ok_or(DecodeError { word })?;
        Ok(Inst::Vsetivli {
            rd,
            avl: ((word >> 15) & 0x1f) as u8,
            vtype,
        })
    } else if word >> 25 == 0b1000000 {
        Ok(Inst::Vsetvl {
            rd,
            rs1: rs1_x(word),
            rs2: rs2_x(word),
        })
    } else {
        err(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::vtype::Lmul;

    fn x(n: u8) -> XReg {
        XReg::new(n).unwrap()
    }
    fn v(n: u8) -> VReg {
        VReg::new(n).unwrap()
    }
    fn f(n: u8) -> FReg {
        FReg::new(n).unwrap()
    }

    #[test]
    fn decode_golden_words() {
        assert_eq!(
            decode(0x0010_0093).unwrap(),
            Inst::OpImm {
                op: AluOp::Add,
                rd: x(1),
                rs1: x(0),
                imm: 1
            }
        );
        assert_eq!(
            decode(0xff01_0113).unwrap(),
            Inst::OpImm {
                op: AluOp::Add,
                rd: x(2),
                rs1: x(2),
                imm: -16
            }
        );
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Inst::Ebreak);
    }

    #[test]
    fn undecodable_words_error() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // funct3 = 111 load (no such width)
        assert!(decode(0x0000_7003).is_err());
    }

    /// Every instruction we can build round-trips encode → decode.
    #[test]
    fn round_trip_representative_sample() {
        let sample: Vec<Inst> = vec![
            Inst::Lui {
                rd: x(7),
                imm: -4096,
            },
            Inst::Auipc {
                rd: x(3),
                imm: 0x7ffff000,
            },
            Inst::Jal {
                rd: x(1),
                offset: -2048,
            },
            Inst::Jalr {
                rd: x(0),
                rs1: x(1),
                offset: 0,
            },
            Inst::Branch {
                op: BranchOp::Geu,
                rs1: x(4),
                rs2: x(5),
                offset: 4094,
            },
            Inst::Load {
                width: MemWidth::W,
                signed: false,
                rd: x(9),
                rs1: x(8),
                offset: -2048,
            },
            Inst::Store {
                width: MemWidth::B,
                rs2: x(6),
                rs1: x(7),
                offset: 2047,
            },
            Inst::OpImm {
                op: AluOp::Sra,
                rd: x(1),
                rs1: x(2),
                imm: 63,
            },
            Inst::Op {
                op: AluOp::Mulhsu,
                rd: x(1),
                rs1: x(2),
                rs2: x(3),
            },
            Inst::OpImm32 {
                op: AluWOp::Sraw,
                rd: x(1),
                rs1: x(2),
                imm: 31,
            },
            Inst::Op32 {
                op: AluWOp::Remuw,
                rd: x(1),
                rs1: x(2),
                rs2: x(3),
            },
            Inst::Fence,
            Inst::Csr {
                op: CsrOp::Rs,
                rd: x(10),
                csr: Csr::MHARTID,
                src: CsrSrc::Reg(x(0)),
            },
            Inst::Csr {
                op: CsrOp::Rw,
                rd: x(0),
                csr: Csr::MSCRATCH,
                src: CsrSrc::Imm(31),
            },
            Inst::Amo {
                op: AmoOp::Add,
                width: MemWidth::D,
                rd: x(10),
                rs1: x(11),
                rs2: x(12),
            },
            Inst::Fld {
                rd: f(5),
                rs1: x(10),
                offset: 16,
            },
            Inst::Fsd {
                rs2: f(5),
                rs1: x(10),
                offset: -8,
            },
            Inst::FpOp {
                op: FpOp::Max,
                rd: f(1),
                rs1: f(2),
                rs2: f(3),
            },
            Inst::FpFma {
                op: FmaOp::Nmadd,
                rd: f(1),
                rs1: f(2),
                rs2: f(3),
                rs3: f(4),
            },
            Inst::FpCmp {
                op: FpCmpOp::Le,
                rd: x(5),
                rs1: f(6),
                rs2: f(7),
            },
            Inst::FpCvt {
                op: FpCvtOp::DFromLu,
                rd: 3,
                rs1: 4,
            },
            Inst::FmvXD {
                rd: x(5),
                rs1: f(6),
            },
            Inst::FmvDX {
                rd: f(6),
                rs1: x(5),
            },
            Inst::Vsetvli {
                rd: x(5),
                rs1: x(10),
                vtype: VType::new(Sew::E64, Lmul::M8),
            },
            Inst::Vsetivli {
                rd: x(5),
                avl: 16,
                vtype: VType::new(Sew::E32, Lmul::M1),
            },
            Inst::Vsetvl {
                rd: x(5),
                rs1: x(10),
                rs2: x(11),
            },
            Inst::VLoad {
                vd: v(8),
                rs1: x(10),
                mode: VAddrMode::Unit,
                eew: Sew::E64,
                vm: true,
            },
            Inst::VLoad {
                vd: v(8),
                rs1: x(10),
                mode: VAddrMode::Strided(x(11)),
                eew: Sew::E32,
                vm: true,
            },
            Inst::VLoad {
                vd: v(8),
                rs1: x(10),
                mode: VAddrMode::Indexed(v(16)),
                eew: Sew::E64,
                vm: false,
            },
            Inst::VStore {
                vs3: v(8),
                rs1: x(10),
                mode: VAddrMode::Unit,
                eew: Sew::E64,
                vm: true,
            },
            Inst::VIntOp {
                op: VIntOp::Add,
                vd: v(1),
                vs2: v(2),
                src: VScalar::Vector(v(3)),
                vm: true,
            },
            Inst::VIntOp {
                op: VIntOp::Rsub,
                vd: v(1),
                vs2: v(2),
                src: VScalar::Xreg(x(3)),
                vm: false,
            },
            Inst::VIntOpImm {
                op: VIntOp::Sll,
                vd: v(1),
                vs2: v(2),
                imm: 3,
                vm: true,
            },
            Inst::VIntOpImm {
                op: VIntOp::Add,
                vd: v(1),
                vs2: v(2),
                imm: -16,
                vm: true,
            },
            Inst::VMulOp {
                op: VMulOp::Macc,
                vd: v(1),
                vs2: v(2),
                src: VScalar::Vector(v(3)),
                vm: true,
            },
            Inst::VFpOp {
                op: VFpOp::Macc,
                vd: v(1),
                vs2: v(2),
                src: VFScalar::Freg(f(3)),
                vm: true,
            },
            Inst::VRedSum {
                vd: v(1),
                vs2: v(2),
                vs1: v(3),
                vm: true,
            },
            Inst::VFRedSum {
                vd: v(1),
                vs2: v(2),
                vs1: v(3),
                vm: true,
            },
            Inst::VMvVV {
                vd: v(1),
                vs1: v(2),
            },
            Inst::VMvVX {
                vd: v(1),
                rs1: x(2),
            },
            Inst::VMvVI { vd: v(1), imm: -5 },
            Inst::VFMvVF {
                vd: v(1),
                rs1: f(2),
            },
            Inst::VMvXS {
                rd: x(1),
                vs2: v(2),
            },
            Inst::VMvSX {
                vd: v(1),
                rs1: x(2),
            },
            Inst::VFMvFS {
                rd: f(1),
                vs2: v(2),
            },
            Inst::VFMvSF {
                vd: v(1),
                rs1: f(2),
            },
            Inst::Vid { vd: v(1), vm: true },
        ];
        for inst in sample {
            let word = encode(&inst).unwrap();
            let back = decode(word).unwrap_or_else(|e| panic!("decode of {inst:?}: {e}"));
            assert_eq!(back, inst, "round-trip through {word:#010x}");
        }
    }

    #[test]
    fn vector_shift_imm_decodes_unsigned() {
        let inst = Inst::VIntOpImm {
            op: VIntOp::Srl,
            vd: v(4),
            vs2: v(5),
            imm: 17,
            vm: true,
        };
        let word = encode(&inst).unwrap();
        assert_eq!(decode(word).unwrap(), inst);
    }
}
