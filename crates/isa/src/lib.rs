//! RISC-V instruction set definitions for the Coyote simulator.
//!
//! This crate is the foundation of the Coyote reproduction (DATE 2021:
//! *Coyote: An Open Source Simulation Tool to Enable RISC-V in HPC*). It
//! defines the supported instruction subset — RV64I, M, an A subset,
//! `Zicsr`, the D floating-point extension and the slice of the V vector
//! extension the paper's HPC kernels rely on — together with a decoder,
//! an encoder and a disassembler that are exact inverses.
//!
//! # Examples
//!
//! Decode, inspect and re-encode a word:
//!
//! ```
//! use coyote_isa::{decode::decode, encode::encode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inst = decode(0x0010_0093)?; // addi ra, zero, 1
//! assert_eq!(inst.to_string(), "addi ra, zero, 1");
//! assert_eq!(encode(&inst)?, 0x0010_0093);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod csr;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod interval;
pub mod predecode;
pub mod reg;
pub mod superblock;
pub mod vtype;

pub use cfg::{BasicBlock, BlockExit, Cfg, NaturalLoop};
pub use csr::Csr;
pub use decode::{decode, DecodeError};
pub use encode::{encode, EncodeError};
pub use inst::Inst;
pub use interval::{sweep_conflicts, AccessInterval, ByteIntervalSet};
pub use predecode::{predecode, predecode_with_stats, DecodedInst, PredecodeStats, RegSet};
pub use reg::{FReg, VReg, XReg};
pub use superblock::{build_plans, BlockSummary, FuseClass, FusePlan, MemPlan};
pub use vtype::{Lmul, Sew, VType};
