//! Instruction encoder: [`Inst`] → 32-bit machine code.
//!
//! The encoder is the canonical definition of the bit layouts used by the
//! whole workspace; [`mod@crate::decode`] mirrors it exactly and the two are
//! property-tested as inverses.
//!
//! Rounding modes are not represented in [`Inst`]; floating-point
//! instructions encode the conventional choices (dynamic rounding for
//! arithmetic, round-toward-zero for float→int conversions), matching
//! what the GNU assembler emits for the corresponding mnemonics.

use std::fmt;

use crate::inst::{
    AluOp, AluWOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpCvtOp, FpOp, Inst, MemWidth,
    VAddrMode, VCmpOp, VFCmpOp, VFScalar, VFpOp, VIntOp, VMaskOp, VMulOp, VScalar,
};
use crate::vtype::Sew;

/// Error produced when an [`Inst`] has no valid encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate or offset does not fit in its encoding field.
    ImmOutOfRange {
        /// Mnemonic-ish context for the message.
        what: &'static str,
        /// The rejected value.
        value: i64,
    },
    /// A branch/jump offset is not a multiple of two.
    MisalignedOffset {
        /// Mnemonic-ish context for the message.
        what: &'static str,
        /// The rejected value.
        value: i64,
    },
    /// The instruction variant cannot be expressed (e.g. `OpImm` with
    /// `Sub`, or a `.vi` form of an operation that has none).
    InvalidForm(&'static str),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { what, value } => {
                write!(f, "immediate {value} out of range for {what}")
            }
            EncodeError::MisalignedOffset { what, value } => {
                write!(f, "offset {value} for {what} is not a multiple of 2")
            }
            EncodeError::InvalidForm(what) => write!(f, "no valid encoding for {what}"),
        }
    }
}

impl std::error::Error for EncodeError {}

type Result32 = Result<u32, EncodeError>;

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const OPC_OP_IMM32: u32 = 0b0011011;
const OPC_OP32: u32 = 0b0111011;
const OPC_SYSTEM: u32 = 0b1110011;
const OPC_AMO: u32 = 0b0101111;
const OPC_LOAD_FP: u32 = 0b0000111;
const OPC_STORE_FP: u32 = 0b0100111;
const OPC_OP_FP: u32 = 0b1010011;
const OPC_FMADD: u32 = 0b1000011;
const OPC_FMSUB: u32 = 0b1000111;
const OPC_FNMSUB: u32 = 0b1001011;
const OPC_FNMADD: u32 = 0b1001111;
const OPC_OP_V: u32 = 0b1010111;

/// Dynamic rounding mode, used for FP arithmetic.
const RM_DYN: u32 = 0b111;
/// Round-toward-zero, used for float→int conversions.
const RM_RTZ: u32 = 0b001;

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i64, rs1: u32, funct3: u32, rd: u32, opcode: u32, what: &'static str) -> Result32 {
    if !(-2048..=2047).contains(&imm) {
        return Err(EncodeError::ImmOutOfRange { what, value: imm });
    }
    let imm12 = (imm as u32) & 0xfff;
    Ok((imm12 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode)
}

fn s_type(imm: i64, rs2: u32, rs1: u32, funct3: u32, opcode: u32, what: &'static str) -> Result32 {
    if !(-2048..=2047).contains(&imm) {
        return Err(EncodeError::ImmOutOfRange { what, value: imm });
    }
    let imm = imm as u32;
    Ok(((imm >> 5 & 0x7f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode)
}

fn b_type(offset: i64, rs2: u32, rs1: u32, funct3: u32, what: &'static str) -> Result32 {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset {
            what,
            value: offset,
        });
    }
    if !(-4096..=4094).contains(&offset) {
        return Err(EncodeError::ImmOutOfRange {
            what,
            value: offset,
        });
    }
    let imm = offset as u32;
    Ok(((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | OPC_BRANCH)
}

fn u_type(imm: i64, rd: u32, opcode: u32, what: &'static str) -> Result32 {
    if imm % 4096 != 0 {
        return Err(EncodeError::ImmOutOfRange { what, value: imm });
    }
    if !(-(1i64 << 31)..(1i64 << 31)).contains(&imm) {
        return Err(EncodeError::ImmOutOfRange { what, value: imm });
    }
    Ok(((imm as u32) & 0xffff_f000) | (rd << 7) | opcode)
}

fn j_type(offset: i64, rd: u32, what: &'static str) -> Result32 {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset {
            what,
            value: offset,
        });
    }
    if !(-(1i64 << 20)..(1i64 << 20)).contains(&offset) {
        return Err(EncodeError::ImmOutOfRange {
            what,
            value: offset,
        });
    }
    let imm = offset as u32;
    Ok(((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | (rd << 7)
        | OPC_JAL)
}

fn shamt(imm: i64, max: i64, what: &'static str) -> Result<u32, EncodeError> {
    if (0..=max).contains(&imm) {
        Ok(imm as u32)
    } else {
        Err(EncodeError::ImmOutOfRange { what, value: imm })
    }
}

fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Eq => 0b000,
        BranchOp::Ne => 0b001,
        BranchOp::Lt => 0b100,
        BranchOp::Ge => 0b101,
        BranchOp::Ltu => 0b110,
        BranchOp::Geu => 0b111,
    }
}

/// `(funct3, funct7)` for the register form of an [`AluOp`].
fn alu_funct(op: AluOp) -> (u32, u32) {
    match op {
        AluOp::Add => (0b000, 0b0000000),
        AluOp::Sub => (0b000, 0b0100000),
        AluOp::Sll => (0b001, 0b0000000),
        AluOp::Slt => (0b010, 0b0000000),
        AluOp::Sltu => (0b011, 0b0000000),
        AluOp::Xor => (0b100, 0b0000000),
        AluOp::Srl => (0b101, 0b0000000),
        AluOp::Sra => (0b101, 0b0100000),
        AluOp::Or => (0b110, 0b0000000),
        AluOp::And => (0b111, 0b0000000),
        AluOp::Mul => (0b000, 0b0000001),
        AluOp::Mulh => (0b001, 0b0000001),
        AluOp::Mulhsu => (0b010, 0b0000001),
        AluOp::Mulhu => (0b011, 0b0000001),
        AluOp::Div => (0b100, 0b0000001),
        AluOp::Divu => (0b101, 0b0000001),
        AluOp::Rem => (0b110, 0b0000001),
        AluOp::Remu => (0b111, 0b0000001),
    }
}

fn alu_w_funct(op: AluWOp) -> (u32, u32) {
    match op {
        AluWOp::Addw => (0b000, 0b0000000),
        AluWOp::Subw => (0b000, 0b0100000),
        AluWOp::Sllw => (0b001, 0b0000000),
        AluWOp::Srlw => (0b101, 0b0000000),
        AluWOp::Sraw => (0b101, 0b0100000),
        AluWOp::Mulw => (0b000, 0b0000001),
        AluWOp::Divw => (0b100, 0b0000001),
        AluWOp::Divuw => (0b101, 0b0000001),
        AluWOp::Remw => (0b110, 0b0000001),
        AluWOp::Remuw => (0b111, 0b0000001),
    }
}

fn load_funct3(width: MemWidth, signed: bool) -> Result<u32, EncodeError> {
    Ok(match (width, signed) {
        (MemWidth::B, true) => 0b000,
        (MemWidth::H, true) => 0b001,
        (MemWidth::W, true) => 0b010,
        (MemWidth::D, true) => 0b011,
        (MemWidth::B, false) => 0b100,
        (MemWidth::H, false) => 0b101,
        (MemWidth::W, false) => 0b110,
        (MemWidth::D, false) => return Err(EncodeError::InvalidForm("ldu does not exist")),
    })
}

fn amo_funct5(op: AmoOp) -> u32 {
    match op {
        AmoOp::Lr => 0b00010,
        AmoOp::Sc => 0b00011,
        AmoOp::Swap => 0b00001,
        AmoOp::Add => 0b00000,
        AmoOp::Xor => 0b00100,
        AmoOp::And => 0b01100,
        AmoOp::Or => 0b01000,
        AmoOp::Min => 0b10000,
        AmoOp::Max => 0b10100,
        AmoOp::Minu => 0b11000,
        AmoOp::Maxu => 0b11100,
    }
}

/// Vector element width → mem-op `width` field.
fn vmem_width(eew: Sew) -> u32 {
    match eew {
        Sew::E8 => 0b000,
        Sew::E16 => 0b101,
        Sew::E32 => 0b110,
        Sew::E64 => 0b111,
    }
}

/// `(mop, field24_20)` for a vector addressing mode.
fn vmem_mode(mode: VAddrMode) -> (u32, u32) {
    match mode {
        VAddrMode::Unit => (0b00, 0b00000),
        VAddrMode::Indexed(vs2) => (0b01, vs2.bits()),
        VAddrMode::Strided(rs2) => (0b10, rs2.bits()),
    }
}

/// OPIVV/OPIVX/OPIVI funct6 for a [`VIntOp`].
fn vint_funct6(op: VIntOp) -> u32 {
    match op {
        VIntOp::Add => 0b000000,
        VIntOp::Sub => 0b000010,
        VIntOp::Rsub => 0b000011,
        VIntOp::Minu => 0b000100,
        VIntOp::Min => 0b000101,
        VIntOp::Maxu => 0b000110,
        VIntOp::Max => 0b000111,
        VIntOp::And => 0b001001,
        VIntOp::Or => 0b001010,
        VIntOp::Xor => 0b001011,
        VIntOp::Sll => 0b100101,
        VIntOp::Srl => 0b101000,
        VIntOp::Sra => 0b101001,
    }
}

/// Whether the `.vi` form exists for a [`VIntOp`].
fn vint_has_vi(op: VIntOp) -> bool {
    matches!(
        op,
        VIntOp::Add
            | VIntOp::Rsub
            | VIntOp::And
            | VIntOp::Or
            | VIntOp::Xor
            | VIntOp::Sll
            | VIntOp::Srl
            | VIntOp::Sra
    )
}

/// Whether the `.vx` (and `.vv`) form exists: `Rsub` has no `.vv`.
fn vint_has_vv(op: VIntOp) -> bool {
    op != VIntOp::Rsub
}

/// OPMVV/OPMVX funct6 for a [`VMulOp`].
fn vmul_funct6(op: VMulOp) -> u32 {
    match op {
        VMulOp::Divu => 0b100000,
        VMulOp::Div => 0b100001,
        VMulOp::Remu => 0b100010,
        VMulOp::Rem => 0b100011,
        VMulOp::Mulhu => 0b100100,
        VMulOp::Mul => 0b100101,
        VMulOp::Mulh => 0b100111,
        VMulOp::Macc => 0b101101,
    }
}

/// OPIVV/OPIVX/OPIVI funct6 for a [`VCmpOp`].
fn vcmp_funct6(op: VCmpOp) -> u32 {
    match op {
        VCmpOp::Eq => 0b011000,
        VCmpOp::Ne => 0b011001,
        VCmpOp::Ltu => 0b011010,
        VCmpOp::Lt => 0b011011,
        VCmpOp::Leu => 0b011100,
        VCmpOp::Le => 0b011101,
        VCmpOp::Gtu => 0b011110,
        VCmpOp::Gt => 0b011111,
    }
}

/// OPFVV/OPFVF funct6 for a [`VFCmpOp`].
fn vfcmp_funct6(op: VFCmpOp) -> u32 {
    match op {
        VFCmpOp::Eq => 0b011000,
        VFCmpOp::Le => 0b011001,
        VFCmpOp::Lt => 0b011011,
        VFCmpOp::Ne => 0b011100,
        VFCmpOp::Gt => 0b011101,
        VFCmpOp::Ge => 0b011111,
    }
}

/// OPMVV funct6 for a [`VMaskOp`] (`.mm` form).
fn vmask_funct6(op: VMaskOp) -> u32 {
    match op {
        VMaskOp::AndNot => 0b011000,
        VMaskOp::And => 0b011001,
        VMaskOp::Or => 0b011010,
        VMaskOp::Xor => 0b011011,
        VMaskOp::OrNot => 0b011100,
        VMaskOp::Nand => 0b011101,
        VMaskOp::Nor => 0b011110,
        VMaskOp::Xnor => 0b011111,
    }
}

/// OPFVV/OPFVF funct6 for a [`VFpOp`].
fn vfp_funct6(op: VFpOp) -> u32 {
    match op {
        VFpOp::Add => 0b000000,
        VFpOp::Sub => 0b000010,
        VFpOp::Min => 0b000100,
        VFpOp::Max => 0b000110,
        VFpOp::Sgnj => 0b001000,
        VFpOp::Div => 0b100000,
        VFpOp::Mul => 0b100100,
        VFpOp::Macc => 0b101100,
    }
}

/// OP-V arithmetic encoding: `funct6 | vm | vs2 | vs1/rs1/imm | funct3 | vd`.
fn op_v(funct6: u32, vm: bool, f19_15: u32, f24_20: u32, funct3: u32, vd: u32) -> u32 {
    (funct6 << 26)
        | (u32::from(vm) << 25)
        | (f24_20 << 20)
        | (f19_15 << 15)
        | (funct3 << 12)
        | (vd << 7)
        | OPC_OP_V
}

const F3_OPIVV: u32 = 0b000;
const F3_OPFVV: u32 = 0b001;
const F3_OPMVV: u32 = 0b010;
const F3_OPIVI: u32 = 0b011;
const F3_OPIVX: u32 = 0b100;
const F3_OPFVF: u32 = 0b101;
const F3_OPMVX: u32 = 0b110;
const F3_OPCFG: u32 = 0b111;

fn simm5(imm: i8, what: &'static str) -> Result<u32, EncodeError> {
    if (-16..=15).contains(&imm) {
        Ok((imm as u32) & 0x1f)
    } else {
        Err(EncodeError::ImmOutOfRange {
            what,
            value: i64::from(imm),
        })
    }
}

/// Encodes a decoded instruction into its 32-bit machine representation.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate or offset does not fit its
/// field, or the variant has no architectural encoding (see the error's
/// variants).
///
/// # Examples
///
/// ```
/// # use coyote_isa::{encode::encode, inst::{Inst, AluOp}, reg::XReg};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = Inst::OpImm {
///     op: AluOp::Add,
///     rd: XReg::RA,
///     rs1: XReg::ZERO,
///     imm: 1,
/// };
/// assert_eq!(encode(&inst)?, 0x0010_0093); // addi ra, zero, 1
/// # Ok(())
/// # }
/// ```
pub fn encode(inst: &Inst) -> Result32 {
    match *inst {
        Inst::Lui { rd, imm } => u_type(imm, rd.bits(), OPC_LUI, "lui"),
        Inst::Auipc { rd, imm } => u_type(imm, rd.bits(), OPC_AUIPC, "auipc"),
        Inst::Jal { rd, offset } => j_type(i64::from(offset), rd.bits(), "jal"),
        Inst::Jalr { rd, rs1, offset } => i_type(
            i64::from(offset),
            rs1.bits(),
            0b000,
            rd.bits(),
            OPC_JALR,
            "jalr",
        ),
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => b_type(
            i64::from(offset),
            rs2.bits(),
            rs1.bits(),
            branch_funct3(op),
            "branch",
        ),
        Inst::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => i_type(
            i64::from(offset),
            rs1.bits(),
            load_funct3(width, signed)?,
            rd.bits(),
            OPC_LOAD,
            "load",
        ),
        Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        } => s_type(
            i64::from(offset),
            rs2.bits(),
            rs1.bits(),
            width.log2_bytes(),
            OPC_STORE,
            "store",
        ),
        Inst::OpImm { op, rd, rs1, imm } => {
            let (funct3, funct7) = alu_funct(op);
            match op {
                AluOp::Sub => Err(EncodeError::InvalidForm("subi does not exist")),
                _ if op.is_m_ext() => Err(EncodeError::InvalidForm("op-imm with M-extension op")),
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    let sh = shamt(imm, 63, "shift amount")?;
                    Ok(r_type(
                        funct7 | (sh >> 5),
                        sh & 0x1f,
                        rs1.bits(),
                        funct3,
                        rd.bits(),
                        OPC_OP_IMM,
                    ))
                }
                _ => i_type(imm, rs1.bits(), funct3, rd.bits(), OPC_OP_IMM, "op-imm"),
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = alu_funct(op);
            Ok(r_type(
                funct7,
                rs2.bits(),
                rs1.bits(),
                funct3,
                rd.bits(),
                OPC_OP,
            ))
        }
        Inst::OpImm32 { op, rd, rs1, imm } => {
            let (funct3, funct7) = alu_w_funct(op);
            match op {
                AluWOp::Addw => i_type(imm, rs1.bits(), funct3, rd.bits(), OPC_OP_IMM32, "addiw"),
                AluWOp::Sllw | AluWOp::Srlw | AluWOp::Sraw => {
                    let sh = shamt(imm, 31, "word shift amount")?;
                    Ok(r_type(
                        funct7,
                        sh,
                        rs1.bits(),
                        funct3,
                        rd.bits(),
                        OPC_OP_IMM32,
                    ))
                }
                _ => Err(EncodeError::InvalidForm("op-imm-32 variant")),
            }
        }
        Inst::Op32 { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = alu_w_funct(op);
            Ok(r_type(
                funct7,
                rs2.bits(),
                rs1.bits(),
                funct3,
                rd.bits(),
                OPC_OP32,
            ))
        }
        Inst::Fence => Ok(0x0ff0_000f),
        Inst::Ecall => Ok(0x0000_0073),
        Inst::Ebreak => Ok(0x0010_0073),
        Inst::Csr { op, rd, csr, src } => {
            let base = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            let (funct3, field) = match src {
                CsrSrc::Reg(rs1) => (base, rs1.bits()),
                CsrSrc::Imm(z) => {
                    if z >= 32 {
                        return Err(EncodeError::ImmOutOfRange {
                            what: "csr immediate",
                            value: i64::from(z),
                        });
                    }
                    (base | 0b100, u32::from(z))
                }
            };
            Ok((csr.bits() << 20) | (field << 15) | (funct3 << 12) | (rd.bits() << 7) | OPC_SYSTEM)
        }
        Inst::Amo {
            op,
            width,
            rd,
            rs1,
            rs2,
        } => {
            let funct3 = match width {
                MemWidth::W => 0b010,
                MemWidth::D => 0b011,
                _ => return Err(EncodeError::InvalidForm("amo width must be w or d")),
            };
            if op == AmoOp::Lr && rs2 != crate::reg::XReg::ZERO {
                return Err(EncodeError::InvalidForm("lr with rs2 != x0"));
            }
            Ok(r_type(
                amo_funct5(op) << 2,
                rs2.bits(),
                rs1.bits(),
                funct3,
                rd.bits(),
                OPC_AMO,
            ))
        }
        Inst::Fld { rd, rs1, offset } => i_type(
            i64::from(offset),
            rs1.bits(),
            0b011,
            rd.bits(),
            OPC_LOAD_FP,
            "fld",
        ),
        Inst::Fsd { rs2, rs1, offset } => s_type(
            i64::from(offset),
            rs2.bits(),
            rs1.bits(),
            0b011,
            OPC_STORE_FP,
            "fsd",
        ),
        Inst::FpOp { op, rd, rs1, rs2 } => {
            let (funct7, rm) = match op {
                FpOp::Add => (0b0000001, RM_DYN),
                FpOp::Sub => (0b0000101, RM_DYN),
                FpOp::Mul => (0b0001001, RM_DYN),
                FpOp::Div => (0b0001101, RM_DYN),
                FpOp::Sgnj => (0b0010001, 0b000),
                FpOp::Sgnjn => (0b0010001, 0b001),
                FpOp::Sgnjx => (0b0010001, 0b010),
                FpOp::Min => (0b0010101, 0b000),
                FpOp::Max => (0b0010101, 0b001),
            };
            Ok(r_type(
                funct7,
                rs2.bits(),
                rs1.bits(),
                rm,
                rd.bits(),
                OPC_OP_FP,
            ))
        }
        Inst::FpFma {
            op,
            rd,
            rs1,
            rs2,
            rs3,
        } => {
            let opcode = match op {
                FmaOp::Madd => OPC_FMADD,
                FmaOp::Msub => OPC_FMSUB,
                FmaOp::Nmsub => OPC_FNMSUB,
                FmaOp::Nmadd => OPC_FNMADD,
            };
            Ok((rs3.bits() << 27)
                | (0b01 << 25)
                | (rs2.bits() << 20)
                | (rs1.bits() << 15)
                | (RM_DYN << 12)
                | (rd.bits() << 7)
                | opcode)
        }
        Inst::FpCmp { op, rd, rs1, rs2 } => {
            let rm = match op {
                FpCmpOp::Eq => 0b010,
                FpCmpOp::Lt => 0b001,
                FpCmpOp::Le => 0b000,
            };
            Ok(r_type(
                0b1010001,
                rs2.bits(),
                rs1.bits(),
                rm,
                rd.bits(),
                OPC_OP_FP,
            ))
        }
        Inst::FpCvt { op, rd, rs1 } => {
            let (funct7, rs2_field, rm) = match op {
                FpCvtOp::DFromW => (0b1101001, 0b00000, 0b000),
                FpCvtOp::DFromL => (0b1101001, 0b00010, 0b000),
                FpCvtOp::DFromLu => (0b1101001, 0b00011, 0b000),
                FpCvtOp::WFromD => (0b1100001, 0b00000, RM_RTZ),
                FpCvtOp::LFromD => (0b1100001, 0b00010, RM_RTZ),
                FpCvtOp::LuFromD => (0b1100001, 0b00011, RM_RTZ),
            };
            if rd >= 32 || rs1 >= 32 {
                return Err(EncodeError::ImmOutOfRange {
                    what: "fcvt register index",
                    value: i64::from(rd.max(rs1)),
                });
            }
            Ok(r_type(
                funct7,
                rs2_field,
                u32::from(rs1),
                rm,
                u32::from(rd),
                OPC_OP_FP,
            ))
        }
        Inst::FmvXD { rd, rs1 } => Ok(r_type(
            0b1110001,
            0,
            rs1.bits(),
            0b000,
            rd.bits(),
            OPC_OP_FP,
        )),
        Inst::FmvDX { rd, rs1 } => Ok(r_type(
            0b1111001,
            0,
            rs1.bits(),
            0b000,
            rd.bits(),
            OPC_OP_FP,
        )),
        Inst::Vsetvli { rd, rs1, vtype } => {
            let zimm = (vtype.to_bits() as u32) & 0x7ff;
            Ok((zimm << 20) | (rs1.bits() << 15) | (F3_OPCFG << 12) | (rd.bits() << 7) | OPC_OP_V)
        }
        Inst::Vsetivli { rd, avl, vtype } => {
            if avl >= 32 {
                return Err(EncodeError::ImmOutOfRange {
                    what: "vsetivli avl",
                    value: i64::from(avl),
                });
            }
            let zimm = (vtype.to_bits() as u32) & 0x3ff;
            Ok((0b11 << 30)
                | (zimm << 20)
                | (u32::from(avl) << 15)
                | (F3_OPCFG << 12)
                | (rd.bits() << 7)
                | OPC_OP_V)
        }
        Inst::Vsetvl { rd, rs1, rs2 } => Ok((1 << 31)
            | (rs2.bits() << 20)
            | (rs1.bits() << 15)
            | (F3_OPCFG << 12)
            | (rd.bits() << 7)
            | OPC_OP_V),
        Inst::VLoad {
            vd,
            rs1,
            mode,
            eew,
            vm,
        } => {
            let (mop, f24_20) = vmem_mode(mode);
            Ok((mop << 26)
                | (u32::from(vm) << 25)
                | (f24_20 << 20)
                | (rs1.bits() << 15)
                | (vmem_width(eew) << 12)
                | (vd.bits() << 7)
                | OPC_LOAD_FP)
        }
        Inst::VStore {
            vs3,
            rs1,
            mode,
            eew,
            vm,
        } => {
            let (mop, f24_20) = vmem_mode(mode);
            Ok((mop << 26)
                | (u32::from(vm) << 25)
                | (f24_20 << 20)
                | (rs1.bits() << 15)
                | (vmem_width(eew) << 12)
                | (vs3.bits() << 7)
                | OPC_STORE_FP)
        }
        Inst::VIntOp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            let funct6 = vint_funct6(op);
            match src {
                VScalar::Vector(vs1) => {
                    if !vint_has_vv(op) {
                        return Err(EncodeError::InvalidForm("vrsub.vv does not exist"));
                    }
                    Ok(op_v(
                        funct6,
                        vm,
                        vs1.bits(),
                        vs2.bits(),
                        F3_OPIVV,
                        vd.bits(),
                    ))
                }
                VScalar::Xreg(rs1) => Ok(op_v(
                    funct6,
                    vm,
                    rs1.bits(),
                    vs2.bits(),
                    F3_OPIVX,
                    vd.bits(),
                )),
            }
        }
        Inst::VIntOpImm {
            op,
            vd,
            vs2,
            imm,
            vm,
        } => {
            if !vint_has_vi(op) {
                return Err(EncodeError::InvalidForm("vector op has no .vi form"));
            }
            let field = if matches!(op, VIntOp::Sll | VIntOp::Srl | VIntOp::Sra) {
                if !(0..=31).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange {
                        what: "vector shift immediate",
                        value: i64::from(imm),
                    });
                }
                (imm as u32) & 0x1f
            } else {
                simm5(imm, "vector immediate")?
            };
            Ok(op_v(
                vint_funct6(op),
                vm,
                field,
                vs2.bits(),
                F3_OPIVI,
                vd.bits(),
            ))
        }
        Inst::VMulOp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            let funct6 = vmul_funct6(op);
            match src {
                VScalar::Vector(vs1) => Ok(op_v(
                    funct6,
                    vm,
                    vs1.bits(),
                    vs2.bits(),
                    F3_OPMVV,
                    vd.bits(),
                )),
                VScalar::Xreg(rs1) => Ok(op_v(
                    funct6,
                    vm,
                    rs1.bits(),
                    vs2.bits(),
                    F3_OPMVX,
                    vd.bits(),
                )),
            }
        }
        Inst::VFpOp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            let funct6 = vfp_funct6(op);
            match src {
                VFScalar::Vector(vs1) => Ok(op_v(
                    funct6,
                    vm,
                    vs1.bits(),
                    vs2.bits(),
                    F3_OPFVV,
                    vd.bits(),
                )),
                VFScalar::Freg(rs1) => Ok(op_v(
                    funct6,
                    vm,
                    rs1.bits(),
                    vs2.bits(),
                    F3_OPFVF,
                    vd.bits(),
                )),
            }
        }
        Inst::VRedSum { vd, vs2, vs1, vm } => Ok(op_v(
            0b000000,
            vm,
            vs1.bits(),
            vs2.bits(),
            F3_OPMVV,
            vd.bits(),
        )),
        Inst::VFRedSum { vd, vs2, vs1, vm } => Ok(op_v(
            0b000001,
            vm,
            vs1.bits(),
            vs2.bits(),
            F3_OPFVV,
            vd.bits(),
        )),
        Inst::VMvVV { vd, vs1 } => Ok(op_v(0b010111, true, vs1.bits(), 0, F3_OPIVV, vd.bits())),
        Inst::VMvVX { vd, rs1 } => Ok(op_v(0b010111, true, rs1.bits(), 0, F3_OPIVX, vd.bits())),
        Inst::VMvVI { vd, imm } => Ok(op_v(
            0b010111,
            true,
            simm5(imm, "vmv.v.i immediate")?,
            0,
            F3_OPIVI,
            vd.bits(),
        )),
        Inst::VFMvVF { vd, rs1 } => Ok(op_v(0b010111, true, rs1.bits(), 0, F3_OPFVF, vd.bits())),
        Inst::VMvXS { rd, vs2 } => Ok(op_v(0b010000, true, 0, vs2.bits(), F3_OPMVV, rd.bits())),
        Inst::VMvSX { vd, rs1 } => Ok(op_v(0b010000, true, rs1.bits(), 0, F3_OPMVX, vd.bits())),
        Inst::VFMvFS { rd, vs2 } => Ok(op_v(0b010000, true, 0, vs2.bits(), F3_OPFVV, rd.bits())),
        Inst::VFMvSF { vd, rs1 } => Ok(op_v(0b010000, true, rs1.bits(), 0, F3_OPFVF, vd.bits())),
        Inst::Vid { vd, vm } => Ok(op_v(0b010100, vm, 0b10001, 0, F3_OPMVV, vd.bits())),
        Inst::VMaskCmp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            let funct6 = vcmp_funct6(op);
            match src {
                VScalar::Vector(vs1) => {
                    if matches!(op, VCmpOp::Gt | VCmpOp::Gtu) {
                        return Err(EncodeError::InvalidForm("vmsgt has no .vv form"));
                    }
                    Ok(op_v(
                        funct6,
                        vm,
                        vs1.bits(),
                        vs2.bits(),
                        F3_OPIVV,
                        vd.bits(),
                    ))
                }
                VScalar::Xreg(rs1) => Ok(op_v(
                    funct6,
                    vm,
                    rs1.bits(),
                    vs2.bits(),
                    F3_OPIVX,
                    vd.bits(),
                )),
            }
        }
        Inst::VMaskCmpImm {
            op,
            vd,
            vs2,
            imm,
            vm,
        } => {
            if matches!(op, VCmpOp::Lt | VCmpOp::Ltu) {
                return Err(EncodeError::InvalidForm("vmslt has no .vi form"));
            }
            Ok(op_v(
                vcmp_funct6(op),
                vm,
                simm5(imm, "mask-compare immediate")?,
                vs2.bits(),
                F3_OPIVI,
                vd.bits(),
            ))
        }
        Inst::VFMaskCmp {
            op,
            vd,
            vs2,
            src,
            vm,
        } => {
            let funct6 = vfcmp_funct6(op);
            match src {
                VFScalar::Vector(vs1) => {
                    if matches!(op, VFCmpOp::Gt | VFCmpOp::Ge) {
                        return Err(EncodeError::InvalidForm("vmfgt/vmfge have no .vv form"));
                    }
                    Ok(op_v(
                        funct6,
                        vm,
                        vs1.bits(),
                        vs2.bits(),
                        F3_OPFVV,
                        vd.bits(),
                    ))
                }
                VFScalar::Freg(rs1) => Ok(op_v(
                    funct6,
                    vm,
                    rs1.bits(),
                    vs2.bits(),
                    F3_OPFVF,
                    vd.bits(),
                )),
            }
        }
        Inst::VMaskLogical { op, vd, vs2, vs1 } => Ok(op_v(
            vmask_funct6(op),
            true,
            vs1.bits(),
            vs2.bits(),
            F3_OPMVV,
            vd.bits(),
        )),
        Inst::VMerge { vd, vs2, src } => match src {
            VScalar::Vector(vs1) => Ok(op_v(
                0b010111,
                false,
                vs1.bits(),
                vs2.bits(),
                F3_OPIVV,
                vd.bits(),
            )),
            VScalar::Xreg(rs1) => Ok(op_v(
                0b010111,
                false,
                rs1.bits(),
                vs2.bits(),
                F3_OPIVX,
                vd.bits(),
            )),
        },
        Inst::VMergeImm { vd, vs2, imm } => Ok(op_v(
            0b010111,
            false,
            simm5(imm, "vmerge immediate")?,
            vs2.bits(),
            F3_OPIVI,
            vd.bits(),
        )),
        Inst::VFMerge { vd, vs2, rs1 } => Ok(op_v(
            0b010111,
            false,
            rs1.bits(),
            vs2.bits(),
            F3_OPFVF,
            vd.bits(),
        )),
        Inst::Vcpop { rd, vs2, vm } => {
            Ok(op_v(0b010000, vm, 0b10000, vs2.bits(), F3_OPMVV, rd.bits()))
        }
        Inst::Vfirst { rd, vs2, vm } => {
            Ok(op_v(0b010000, vm, 0b10001, vs2.bits(), F3_OPMVV, rd.bits()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::XReg;
    use crate::vtype::{Lmul, VType};

    fn x(n: u8) -> XReg {
        XReg::new(n).unwrap()
    }

    #[test]
    fn golden_scalar_encodings() {
        // Cross-checked against the RISC-V spec / GNU as output.
        let cases: Vec<(Inst, u32)> = vec![
            (
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: x(1),
                    rs1: x(0),
                    imm: 1,
                },
                0x0010_0093, // addi ra, zero, 1
            ),
            (
                Inst::Op {
                    op: AluOp::Add,
                    rd: x(1),
                    rs1: x(2),
                    rs2: x(3),
                },
                0x0031_00b3, // add ra, sp, gp
            ),
            (
                Inst::Lui {
                    rd: x(10),
                    imm: 0x12345 << 12,
                },
                0x1234_5537, // lui a0, 0x12345
            ),
            (
                Inst::Jal {
                    rd: x(0),
                    offset: 0,
                },
                0x0000_006f,
            ),
            (
                Inst::Load {
                    width: MemWidth::D,
                    signed: true,
                    rd: x(10),
                    rs1: x(2),
                    offset: 8,
                },
                0x0081_3503, // ld a0, 8(sp)
            ),
            (
                Inst::Store {
                    width: MemWidth::D,
                    rs2: x(10),
                    rs1: x(2),
                    offset: 8,
                },
                0x00a1_3423, // sd a0, 8(sp)
            ),
            (Inst::Ecall, 0x0000_0073),
            (Inst::Ebreak, 0x0010_0073),
        ];
        for (inst, want) in cases {
            assert_eq!(encode(&inst).unwrap(), want, "encoding {inst:?}");
        }
    }

    #[test]
    fn negative_immediates() {
        // addi sp, sp, -16 = 0xff010113
        let inst = Inst::OpImm {
            op: AluOp::Add,
            rd: x(2),
            rs1: x(2),
            imm: -16,
        };
        assert_eq!(encode(&inst).unwrap(), 0xff01_0113);
    }

    #[test]
    fn branch_encoding_bne() {
        // bne a0, a1, -4  (backward branch)
        let inst = Inst::Branch {
            op: BranchOp::Ne,
            rs1: x(10),
            rs2: x(11),
            offset: -4,
        };
        assert_eq!(encode(&inst).unwrap(), 0xfeb5_1ee3);
    }

    #[test]
    fn out_of_range_rejected() {
        let inst = Inst::OpImm {
            op: AluOp::Add,
            rd: x(1),
            rs1: x(1),
            imm: 5000,
        };
        assert!(matches!(
            encode(&inst),
            Err(EncodeError::ImmOutOfRange { .. })
        ));

        let inst = Inst::Jal {
            rd: x(0),
            offset: 3,
        };
        assert!(matches!(
            encode(&inst),
            Err(EncodeError::MisalignedOffset { .. })
        ));
    }

    #[test]
    fn invalid_forms_rejected() {
        let inst = Inst::OpImm {
            op: AluOp::Sub,
            rd: x(1),
            rs1: x(1),
            imm: 0,
        };
        assert_eq!(
            encode(&inst),
            Err(EncodeError::InvalidForm("subi does not exist"))
        );

        let inst = Inst::OpImm {
            op: AluOp::Mul,
            rd: x(1),
            rs1: x(1),
            imm: 0,
        };
        assert!(encode(&inst).is_err());
    }

    #[test]
    fn vsetvli_layout() {
        // vsetvli t0, a0, e64,m1,ta,ma: zimm = 0b11011000 = 0xd8
        let inst = Inst::Vsetvli {
            rd: x(5),
            rs1: x(10),
            vtype: VType::new(crate::vtype::Sew::E64, Lmul::M1),
        };
        let word = encode(&inst).unwrap();
        assert_eq!(word & 0x7f, OPC_OP_V);
        assert_eq!((word >> 12) & 0x7, F3_OPCFG);
        assert_eq!(word >> 31, 0); // vsetvli bit
        assert_eq!((word >> 20) & 0x7ff, 0xd8);
        assert_eq!((word >> 7) & 0x1f, 5);
        assert_eq!((word >> 15) & 0x1f, 10);
    }

    #[test]
    fn vector_shift_immediate_range() {
        use crate::reg::VReg;
        let v = |n| VReg::new(n).unwrap();
        let ok = Inst::VIntOpImm {
            op: VIntOp::Sll,
            vd: v(1),
            vs2: v(2),
            imm: 31,
            vm: true,
        };
        assert!(encode(&ok).is_ok());
        // Shift amounts are unsigned 5-bit: 17 would be negative as simm5
        // but is a legal shift.
        let ok17 = Inst::VIntOpImm {
            op: VIntOp::Sll,
            vd: v(1),
            vs2: v(2),
            imm: 17,
            vm: true,
        };
        assert!(encode(&ok17).is_ok());
        let bad = Inst::VIntOpImm {
            op: VIntOp::Sll,
            vd: v(1),
            vs2: v(2),
            imm: -1,
            vm: true,
        };
        assert!(encode(&bad).is_err());
    }

    #[test]
    fn lr_requires_x0_rs2() {
        let bad = Inst::Amo {
            op: AmoOp::Lr,
            width: MemWidth::D,
            rd: x(10),
            rs1: x(11),
            rs2: x(12),
        };
        assert!(encode(&bad).is_err());
        let ok = Inst::Amo {
            op: AmoOp::Lr,
            width: MemWidth::D,
            rd: x(10),
            rs1: x(11),
            rs2: x(0),
        };
        assert!(encode(&ok).is_ok());
    }
}
