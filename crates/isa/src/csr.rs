//! Control and status register (CSR) addresses used by the simulator.
//!
//! Coyote runs baremetal kernels, so only a small machine-mode and
//! vector-state subset is needed: hart identification for work
//! partitioning, the cycle/instret counters, and the V-extension state
//! CSRs.

use std::fmt;

/// A 12-bit CSR address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Csr(u16);

impl Csr {
    /// Machine hart ID (`mhartid`): read by kernels to partition work.
    pub const MHARTID: Csr = Csr(0xF14);
    /// Machine status (`mstatus`).
    pub const MSTATUS: Csr = Csr(0x300);
    /// Machine scratch register (`mscratch`).
    pub const MSCRATCH: Csr = Csr(0x340);
    /// Cycle counter (`cycle`).
    pub const CYCLE: Csr = Csr(0xC00);
    /// Timer (`time`).
    pub const TIME: Csr = Csr(0xC01);
    /// Instructions retired (`instret`).
    pub const INSTRET: Csr = Csr(0xC02);
    /// Vector start position (`vstart`).
    pub const VSTART: Csr = Csr(0x008);
    /// Vector length (`vl`), read-only.
    pub const VL: Csr = Csr(0xC20);
    /// Vector type (`vtype`), read-only.
    pub const VTYPE: Csr = Csr(0xC21);
    /// Vector register length in bytes (`vlenb`), read-only.
    pub const VLENB: Csr = Csr(0xC22);

    /// Creates a CSR address from a raw 12-bit value.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCsrError`] if `addr` does not fit in 12 bits.
    pub fn new(addr: u16) -> Result<Csr, InvalidCsrError> {
        if addr < 0x1000 {
            Ok(Csr(addr))
        } else {
            Err(InvalidCsrError { addr })
        }
    }

    /// Creates a CSR address from the 12-bit immediate field of an
    /// instruction encoding.
    #[must_use]
    pub fn from_bits(bits: u32) -> Csr {
        Csr((bits & 0xfff) as u16)
    }

    /// The raw 12-bit address.
    #[must_use]
    pub fn addr(self) -> u16 {
        self.0
    }

    /// The raw address as an encoding field value.
    #[must_use]
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// Whether this CSR is read-only per the privileged-spec address
    /// convention (top two bits both set).
    #[must_use]
    pub fn is_read_only(self) -> bool {
        self.0 >> 10 == 0b11
    }

    /// The conventional name, if this is one of the CSRs the simulator
    /// knows about.
    #[must_use]
    pub fn name(self) -> Option<&'static str> {
        NAMES
            .iter()
            .find_map(|&(csr, name)| (csr == self).then_some(name))
    }

    /// Parses a CSR by conventional name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Csr> {
        NAMES
            .iter()
            .find_map(|&(csr, csr_name)| (csr_name == name).then_some(csr))
    }
}

/// Error returned when a CSR address does not fit in 12 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCsrError {
    /// The rejected address.
    pub addr: u16,
}

impl fmt::Display for InvalidCsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csr address {:#x} out of range (12 bits)", self.addr)
    }
}

impl std::error::Error for InvalidCsrError {}

const NAMES: [(Csr, &str); 10] = [
    (Csr::MHARTID, "mhartid"),
    (Csr::MSTATUS, "mstatus"),
    (Csr::MSCRATCH, "mscratch"),
    (Csr::CYCLE, "cycle"),
    (Csr::TIME, "time"),
    (Csr::INSTRET, "instret"),
    (Csr::VSTART, "vstart"),
    (Csr::VL, "vl"),
    (Csr::VTYPE, "vtype"),
    (Csr::VLENB, "vlenb"),
];

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => f.write_str(name),
            None => write!(f, "{:#x}", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_addresses() {
        assert_eq!(Csr::MHARTID.addr(), 0xF14);
        assert_eq!(Csr::VL.addr(), 0xC20);
        assert_eq!(Csr::VLENB.addr(), 0xC22);
    }

    #[test]
    fn read_only_convention() {
        assert!(Csr::MHARTID.is_read_only());
        assert!(Csr::CYCLE.is_read_only());
        assert!(!Csr::MSTATUS.is_read_only());
        assert!(!Csr::VSTART.is_read_only());
    }

    #[test]
    fn names_round_trip() {
        for (csr, name) in NAMES {
            assert_eq!(csr.name(), Some(name));
            assert_eq!(Csr::parse(name), Some(csr));
            assert_eq!(csr.to_string(), name);
        }
    }

    #[test]
    fn unknown_csr_displays_hex() {
        let csr = Csr::new(0x123).unwrap();
        assert_eq!(csr.name(), None);
        assert_eq!(csr.to_string(), "0x123");
    }

    #[test]
    fn new_rejects_wide_addresses() {
        assert!(Csr::new(0xfff).is_ok());
        assert!(Csr::new(0x1000).is_err());
    }

    #[test]
    fn from_bits_masks() {
        assert_eq!(Csr::from_bits(0xffff_ff14).addr(), 0xf14);
    }
}
