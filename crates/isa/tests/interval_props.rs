//! Property tests for the shared byte-interval module: the sweep must
//! agree with a naive O(n²) pairwise overlap oracle, and the interval
//! set must answer queries exactly like a byte-level reference.

use proptest::prelude::*;

use coyote_isa::{sweep_conflicts, AccessInterval, ByteIntervalSet};

fn naive_conflicts(intervals: &[AccessInterval]) -> bool {
    for (i, a) in intervals.iter().enumerate() {
        for b in &intervals[i + 1..] {
            if a.owner == b.owner || (!a.write && !b.write) {
                continue;
            }
            if a.start < b.end && b.start < a.end {
                return true;
            }
        }
    }
    false
}

fn interval_strategy() -> impl Strategy<Value = AccessInterval> {
    // Small address space and sizes force plenty of overlaps.
    (0_u64..96, 1_u64..12, 0_usize..4, any::<bool>())
        .prop_map(|(addr, size, owner, write)| AccessInterval::new(addr, size, owner, write))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sweep_agrees_with_naive_oracle(intervals in proptest::collection::vec(interval_strategy(), 0..24)) {
        let expected = naive_conflicts(&intervals);
        let mut sorted = intervals.clone();
        let mut open = Vec::new();
        prop_assert_eq!(sweep_conflicts(&mut sorted, &mut open), expected);
    }

    #[test]
    fn interval_set_matches_byte_level_reference(
        ranges in proptest::collection::vec((0_u64..64, 0_u64..16), 0..12),
        probe in 0_u64..80,
        other_ranges in proptest::collection::vec((0_u64..64, 0_u64..16), 0..12),
    ) {
        let mut set = ByteIntervalSet::new();
        let mut bytes = [false; 96];
        for &(start, len) in &ranges {
            set.insert(start, start + len);
            for b in start..start + len {
                bytes[b as usize] = true;
            }
        }
        // Canonical form: sorted, coalesced, non-empty, non-adjacent.
        for pair in set.ranges().windows(2) {
            prop_assert!(pair[0].1 < pair[1].0);
        }
        for &(s, e) in set.ranges() {
            prop_assert!(s < e);
        }
        prop_assert_eq!(set.byte_count(), bytes.iter().filter(|&&b| b).count() as u64);
        prop_assert_eq!(set.contains(probe), bytes.get(probe as usize).copied().unwrap_or(false));

        let mut other = ByteIntervalSet::new();
        let mut other_bytes = vec![false; 96];
        for &(start, len) in &other_ranges {
            other.insert(start, start + len);
            for b in start..start + len {
                other_bytes[b as usize] = true;
            }
        }
        let expected_intersect = bytes.iter().zip(&other_bytes).any(|(&a, &b)| a && b);
        prop_assert_eq!(set.intersects(&other), expected_intersect);
        let expected_overlap = (0..bytes.len() as u64)
            .any(|b| b >= probe && b < probe + 8 && bytes[b as usize]);
        prop_assert_eq!(set.overlaps_range(probe, probe + 8), expected_overlap);
    }
}
