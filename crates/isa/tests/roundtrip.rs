//! Property tests: `encode` and `decode` are exact inverses over the
//! supported instruction space, and `decode` never panics on arbitrary
//! words.

use coyote_isa::decode::decode;
use coyote_isa::encode::encode;
use coyote_isa::inst::{
    AluOp, AluWOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpCvtOp, FpOp, Inst, MemWidth,
    VAddrMode, VCmpOp, VFCmpOp, VFScalar, VFpOp, VIntOp, VMaskOp, VMulOp, VScalar,
};
use coyote_isa::{Csr, FReg, Lmul, Sew, VReg, VType, XReg};
use proptest::prelude::*;

fn xreg() -> impl Strategy<Value = XReg> {
    (0u8..32).prop_map(|n| XReg::new(n).unwrap())
}
fn freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(|n| FReg::new(n).unwrap())
}
fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..32).prop_map(|n| VReg::new(n).unwrap())
}
fn csr() -> impl Strategy<Value = Csr> {
    (0u16..0x1000).prop_map(|a| Csr::new(a).unwrap())
}
fn sew() -> impl Strategy<Value = Sew> {
    prop_oneof![
        Just(Sew::E8),
        Just(Sew::E16),
        Just(Sew::E32),
        Just(Sew::E64)
    ]
}
fn lmul() -> impl Strategy<Value = Lmul> {
    prop_oneof![
        Just(Lmul::MF8),
        Just(Lmul::MF4),
        Just(Lmul::MF2),
        Just(Lmul::M1),
        Just(Lmul::M2),
        Just(Lmul::M4),
        Just(Lmul::M8),
    ]
}
fn vtype() -> impl Strategy<Value = VType> {
    (sew(), lmul(), any::<bool>(), any::<bool>()).prop_map(|(sew, lmul, ta, ma)| VType {
        sew,
        lmul,
        ta,
        ma,
    })
}

fn branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ]
}

fn reg_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn imm_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn shift_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra)]
}

fn alu_w_op() -> impl Strategy<Value = AluWOp> {
    prop_oneof![
        Just(AluWOp::Addw),
        Just(AluWOp::Subw),
        Just(AluWOp::Sllw),
        Just(AluWOp::Srlw),
        Just(AluWOp::Sraw),
        Just(AluWOp::Mulw),
        Just(AluWOp::Divw),
        Just(AluWOp::Divuw),
        Just(AluWOp::Remw),
        Just(AluWOp::Remuw),
    ]
}

fn amo_op() -> impl Strategy<Value = AmoOp> {
    prop_oneof![
        Just(AmoOp::Sc),
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu),
    ]
}

fn fp_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::Div),
        Just(FpOp::Sgnj),
        Just(FpOp::Sgnjn),
        Just(FpOp::Sgnjx),
        Just(FpOp::Min),
        Just(FpOp::Max),
    ]
}

fn vint_vv_op() -> impl Strategy<Value = VIntOp> {
    prop_oneof![
        Just(VIntOp::Add),
        Just(VIntOp::Sub),
        Just(VIntOp::And),
        Just(VIntOp::Or),
        Just(VIntOp::Xor),
        Just(VIntOp::Sll),
        Just(VIntOp::Srl),
        Just(VIntOp::Sra),
        Just(VIntOp::Min),
        Just(VIntOp::Max),
        Just(VIntOp::Minu),
        Just(VIntOp::Maxu),
    ]
}

fn vmul_op() -> impl Strategy<Value = VMulOp> {
    prop_oneof![
        Just(VMulOp::Mul),
        Just(VMulOp::Mulh),
        Just(VMulOp::Mulhu),
        Just(VMulOp::Div),
        Just(VMulOp::Divu),
        Just(VMulOp::Rem),
        Just(VMulOp::Remu),
        Just(VMulOp::Macc),
    ]
}

fn vfp_op() -> impl Strategy<Value = VFpOp> {
    prop_oneof![
        Just(VFpOp::Add),
        Just(VFpOp::Sub),
        Just(VFpOp::Mul),
        Just(VFpOp::Div),
        Just(VFpOp::Min),
        Just(VFpOp::Max),
        Just(VFpOp::Sgnj),
        Just(VFpOp::Macc),
    ]
}

fn vaddr_mode() -> impl Strategy<Value = VAddrMode> {
    prop_oneof![
        Just(VAddrMode::Unit),
        xreg().prop_map(VAddrMode::Strided),
        vreg().prop_map(VAddrMode::Indexed),
    ]
}

prop_compose! {
    fn b_offset()(raw in -2048i32..=2047) -> i32 { raw * 2 }
}
prop_compose! {
    fn j_offset()(raw in -(1i32 << 19)..(1i32 << 19)) -> i32 { raw * 2 }
}
prop_compose! {
    fn u_imm()(raw in -(1i64 << 19)..(1i64 << 19)) -> i64 { raw * 4096 }
}

/// A strategy over every encodable instruction form.
fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (xreg(), u_imm()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (xreg(), u_imm()).prop_map(|(rd, imm)| Inst::Auipc { rd, imm }),
        (xreg(), j_offset()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (xreg(), xreg(), -2048i32..=2047).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (branch_op(), xreg(), xreg(), b_offset()).prop_map(|(op, rs1, rs2, offset)| Inst::Branch {
            op,
            rs1,
            rs2,
            offset
        }),
        (
            prop_oneof![
                (Just(MemWidth::B), any::<bool>()),
                (Just(MemWidth::H), any::<bool>()),
                (Just(MemWidth::W), any::<bool>()),
                (Just(MemWidth::D), Just(true)),
            ],
            xreg(),
            xreg(),
            -2048i32..=2047
        )
            .prop_map(|((width, signed), rd, rs1, offset)| Inst::Load {
                width,
                signed,
                rd,
                rs1,
                offset
            }),
        (
            prop_oneof![
                Just(MemWidth::B),
                Just(MemWidth::H),
                Just(MemWidth::W),
                Just(MemWidth::D)
            ],
            xreg(),
            xreg(),
            -2048i32..=2047
        )
            .prop_map(|(width, rs2, rs1, offset)| Inst::Store {
                width,
                rs2,
                rs1,
                offset
            }),
        (imm_alu_op(), xreg(), xreg(), -2048i64..=2047)
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (shift_op(), xreg(), xreg(), 0i64..=63).prop_map(|(op, rd, rs1, imm)| Inst::OpImm {
            op,
            rd,
            rs1,
            imm
        }),
        (reg_alu_op(), xreg(), xreg(), xreg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (xreg(), xreg(), -2048i64..=2047).prop_map(|(rd, rs1, imm)| Inst::OpImm32 {
            op: AluWOp::Addw,
            rd,
            rs1,
            imm
        }),
        (
            prop_oneof![Just(AluWOp::Sllw), Just(AluWOp::Srlw), Just(AluWOp::Sraw)],
            xreg(),
            xreg(),
            0i64..=31
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm32 { op, rd, rs1, imm }),
        (alu_w_op(), xreg(), xreg(), xreg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op32 {
            op,
            rd,
            rs1,
            rs2
        }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (
            prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)],
            xreg(),
            csr(),
            prop_oneof![
                xreg().prop_map(CsrSrc::Reg),
                (0u8..32).prop_map(CsrSrc::Imm)
            ]
        )
            .prop_map(|(op, rd, csr, src)| Inst::Csr { op, rd, csr, src }),
        (
            amo_op(),
            prop_oneof![Just(MemWidth::W), Just(MemWidth::D)],
            xreg(),
            xreg(),
            xreg()
        )
            .prop_map(|(op, width, rd, rs1, rs2)| Inst::Amo {
                op,
                width,
                rd,
                rs1,
                rs2
            }),
        (
            prop_oneof![Just(MemWidth::W), Just(MemWidth::D)],
            xreg(),
            xreg()
        )
            .prop_map(|(width, rd, rs1)| Inst::Amo {
                op: AmoOp::Lr,
                width,
                rd,
                rs1,
                rs2: XReg::ZERO
            }),
        (freg(), xreg(), -2048i32..=2047).prop_map(|(rd, rs1, offset)| Inst::Fld {
            rd,
            rs1,
            offset
        }),
        (freg(), xreg(), -2048i32..=2047).prop_map(|(rs2, rs1, offset)| Inst::Fsd {
            rs2,
            rs1,
            offset
        }),
        (fp_op(), freg(), freg(), freg()).prop_map(|(op, rd, rs1, rs2)| Inst::FpOp {
            op,
            rd,
            rs1,
            rs2
        }),
        (
            prop_oneof![
                Just(FmaOp::Madd),
                Just(FmaOp::Msub),
                Just(FmaOp::Nmsub),
                Just(FmaOp::Nmadd)
            ],
            freg(),
            freg(),
            freg(),
            freg()
        )
            .prop_map(|(op, rd, rs1, rs2, rs3)| Inst::FpFma {
                op,
                rd,
                rs1,
                rs2,
                rs3
            }),
        (
            prop_oneof![Just(FpCmpOp::Eq), Just(FpCmpOp::Lt), Just(FpCmpOp::Le)],
            xreg(),
            freg(),
            freg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::FpCmp { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(FpCvtOp::DFromL),
                Just(FpCvtOp::DFromLu),
                Just(FpCvtOp::DFromW),
                Just(FpCvtOp::LFromD),
                Just(FpCvtOp::LuFromD),
                Just(FpCvtOp::WFromD)
            ],
            0u8..32,
            0u8..32
        )
            .prop_map(|(op, rd, rs1)| Inst::FpCvt { op, rd, rs1 }),
        (xreg(), freg()).prop_map(|(rd, rs1)| Inst::FmvXD { rd, rs1 }),
        (freg(), xreg()).prop_map(|(rd, rs1)| Inst::FmvDX { rd, rs1 }),
        (xreg(), xreg(), vtype()).prop_map(|(rd, rs1, vtype)| Inst::Vsetvli { rd, rs1, vtype }),
        (xreg(), 0u8..32, vtype()).prop_map(|(rd, avl, vtype)| Inst::Vsetivli { rd, avl, vtype }),
        (xreg(), xreg(), xreg()).prop_map(|(rd, rs1, rs2)| Inst::Vsetvl { rd, rs1, rs2 }),
        (vreg(), xreg(), vaddr_mode(), sew(), any::<bool>()).prop_map(
            |(vd, rs1, mode, eew, vm)| Inst::VLoad {
                vd,
                rs1,
                mode,
                eew,
                vm
            }
        ),
        (vreg(), xreg(), vaddr_mode(), sew(), any::<bool>()).prop_map(
            |(vs3, rs1, mode, eew, vm)| Inst::VStore {
                vs3,
                rs1,
                mode,
                eew,
                vm
            }
        ),
        (vint_vv_op(), vreg(), vreg(), vreg(), any::<bool>()).prop_map(|(op, vd, vs2, vs1, vm)| {
            Inst::VIntOp {
                op,
                vd,
                vs2,
                src: VScalar::Vector(vs1),
                vm,
            }
        }),
        (
            prop_oneof![vint_vv_op(), Just(VIntOp::Rsub)],
            vreg(),
            vreg(),
            xreg(),
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, rs1, vm)| Inst::VIntOp {
                op,
                vd,
                vs2,
                src: VScalar::Xreg(rs1),
                vm
            }),
        (
            prop_oneof![
                Just(VIntOp::Add),
                Just(VIntOp::Rsub),
                Just(VIntOp::And),
                Just(VIntOp::Or),
                Just(VIntOp::Xor)
            ],
            vreg(),
            vreg(),
            -16i8..=15,
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, imm, vm)| Inst::VIntOpImm {
                op,
                vd,
                vs2,
                imm,
                vm
            }),
        (
            prop_oneof![Just(VIntOp::Sll), Just(VIntOp::Srl), Just(VIntOp::Sra)],
            vreg(),
            vreg(),
            0i8..=31,
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, imm, vm)| Inst::VIntOpImm {
                op,
                vd,
                vs2,
                imm,
                vm
            }),
        (
            vmul_op(),
            vreg(),
            vreg(),
            prop_oneof![
                vreg().prop_map(VScalar::Vector),
                xreg().prop_map(VScalar::Xreg)
            ],
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, src, vm)| Inst::VMulOp {
                op,
                vd,
                vs2,
                src,
                vm
            }),
        (
            vfp_op(),
            vreg(),
            vreg(),
            prop_oneof![
                vreg().prop_map(VFScalar::Vector),
                freg().prop_map(VFScalar::Freg)
            ],
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, src, vm)| Inst::VFpOp {
                op,
                vd,
                vs2,
                src,
                vm
            }),
        (vreg(), vreg(), vreg(), any::<bool>()).prop_map(|(vd, vs2, vs1, vm)| Inst::VRedSum {
            vd,
            vs2,
            vs1,
            vm
        }),
        (vreg(), vreg(), vreg(), any::<bool>()).prop_map(|(vd, vs2, vs1, vm)| Inst::VFRedSum {
            vd,
            vs2,
            vs1,
            vm
        }),
        (vreg(), vreg()).prop_map(|(vd, vs1)| Inst::VMvVV { vd, vs1 }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Inst::VMvVX { vd, rs1 }),
        (vreg(), -16i8..=15).prop_map(|(vd, imm)| Inst::VMvVI { vd, imm }),
        (vreg(), freg()).prop_map(|(vd, rs1)| Inst::VFMvVF { vd, rs1 }),
        (xreg(), vreg()).prop_map(|(rd, vs2)| Inst::VMvXS { rd, vs2 }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Inst::VMvSX { vd, rs1 }),
        (freg(), vreg()).prop_map(|(rd, vs2)| Inst::VFMvFS { rd, vs2 }),
        (vreg(), freg()).prop_map(|(vd, rs1)| Inst::VFMvSF { vd, rs1 }),
        (vreg(), any::<bool>()).prop_map(|(vd, vm)| Inst::Vid { vd, vm }),
        // Mask subset.
        (
            prop_oneof![
                Just(VCmpOp::Eq),
                Just(VCmpOp::Ne),
                Just(VCmpOp::Ltu),
                Just(VCmpOp::Lt),
                Just(VCmpOp::Leu),
                Just(VCmpOp::Le)
            ],
            vreg(),
            vreg(),
            vreg(),
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, vs1, vm)| Inst::VMaskCmp {
                op,
                vd,
                vs2,
                src: VScalar::Vector(vs1),
                vm
            }),
        (
            prop_oneof![
                Just(VCmpOp::Eq),
                Just(VCmpOp::Ne),
                Just(VCmpOp::Ltu),
                Just(VCmpOp::Lt),
                Just(VCmpOp::Leu),
                Just(VCmpOp::Le),
                Just(VCmpOp::Gtu),
                Just(VCmpOp::Gt)
            ],
            vreg(),
            vreg(),
            xreg(),
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, rs1, vm)| Inst::VMaskCmp {
                op,
                vd,
                vs2,
                src: VScalar::Xreg(rs1),
                vm
            }),
        (
            prop_oneof![
                Just(VCmpOp::Eq),
                Just(VCmpOp::Ne),
                Just(VCmpOp::Leu),
                Just(VCmpOp::Le),
                Just(VCmpOp::Gtu),
                Just(VCmpOp::Gt)
            ],
            vreg(),
            vreg(),
            -16i8..=15,
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, imm, vm)| Inst::VMaskCmpImm {
                op,
                vd,
                vs2,
                imm,
                vm
            }),
        (
            prop_oneof![
                Just(VFCmpOp::Eq),
                Just(VFCmpOp::Le),
                Just(VFCmpOp::Lt),
                Just(VFCmpOp::Ne)
            ],
            vreg(),
            vreg(),
            vreg(),
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, vs1, vm)| Inst::VFMaskCmp {
                op,
                vd,
                vs2,
                src: VFScalar::Vector(vs1),
                vm
            }),
        (
            prop_oneof![
                Just(VFCmpOp::Eq),
                Just(VFCmpOp::Le),
                Just(VFCmpOp::Lt),
                Just(VFCmpOp::Ne),
                Just(VFCmpOp::Gt),
                Just(VFCmpOp::Ge)
            ],
            vreg(),
            vreg(),
            freg(),
            any::<bool>()
        )
            .prop_map(|(op, vd, vs2, rs1, vm)| Inst::VFMaskCmp {
                op,
                vd,
                vs2,
                src: VFScalar::Freg(rs1),
                vm
            }),
        (
            prop_oneof![
                Just(VMaskOp::And),
                Just(VMaskOp::Nand),
                Just(VMaskOp::AndNot),
                Just(VMaskOp::Xor),
                Just(VMaskOp::Or),
                Just(VMaskOp::Nor),
                Just(VMaskOp::OrNot),
                Just(VMaskOp::Xnor)
            ],
            vreg(),
            vreg(),
            vreg()
        )
            .prop_map(|(op, vd, vs2, vs1)| Inst::VMaskLogical { op, vd, vs2, vs1 }),
        (
            vreg(),
            vreg(),
            prop_oneof![
                vreg().prop_map(VScalar::Vector),
                xreg().prop_map(VScalar::Xreg)
            ]
        )
            .prop_map(|(vd, vs2, src)| Inst::VMerge { vd, vs2, src }),
        (vreg(), vreg(), -16i8..=15).prop_map(|(vd, vs2, imm)| Inst::VMergeImm { vd, vs2, imm }),
        (vreg(), vreg(), freg()).prop_map(|(vd, vs2, rs1)| Inst::VFMerge { vd, vs2, rs1 }),
        (xreg(), vreg(), any::<bool>()).prop_map(|(rd, vs2, vm)| Inst::Vcpop { rd, vs2, vm }),
        (xreg(), vreg(), any::<bool>()).prop_map(|(rd, vs2, vm)| Inst::Vfirst { rd, vs2, vm }),
    ]
}

proptest! {
    /// encode ∘ decode = id over the whole encodable space.
    #[test]
    fn encode_decode_round_trip(inst in inst()) {
        let word = encode(&inst).expect("strategy only yields encodable forms");
        let back = decode(word).expect("every encoded word decodes");
        prop_assert_eq!(back, inst);
    }

    /// decode never panics and, when it succeeds, re-encoding reproduces
    /// a word that decodes to the same instruction (decode is a
    /// retraction of encode).
    #[test]
    fn decode_total_and_stable(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            let re = encode(&inst).expect("decoded instructions are encodable");
            let again = decode(re).expect("re-encoded word decodes");
            prop_assert_eq!(again, inst);
        }
    }

    /// Predecode covers the full decodable space: every encoding
    /// `decode` accepts yields a [`coyote_isa::DecodedInst`] micro-op
    /// holding the same instruction, so the fast path never falls back
    /// for an in-text instruction the slow path could execute.
    #[test]
    fn predecode_covers_every_decodable_encoding(inst in inst()) {
        let word = encode(&inst).expect("strategy only yields encodable forms");
        let entry = coyote_isa::DecodedInst::from_word(word)
            .expect("predecode must accept every word decode accepts");
        prop_assert_eq!(&entry.inst, &inst);
        // And on arbitrary words the two agree on decodability.
        let holes = coyote_isa::predecode(&[word, 0xffff_ffff]);
        prop_assert!(holes[0].is_some());
        prop_assert!(holes[1].is_none());
    }
}
