//! Layer 1: the static determinism lint.
//!
//! A line/token scanner — deliberately not a full parser — that strips
//! string literals and comments, tracks `#[cfg(test)]` / `#[test]`
//! regions by brace depth, and then applies five project-specific
//! rules:
//!
//! | rule            | hazard                                                    |
//! |-----------------|-----------------------------------------------------------|
//! | `hashmap-iter`  | iterating a default-hasher `HashMap`/`HashSet` in a model crate (`mem`, `iss`, `core`, `telemetry`): iteration order is seeded per process and leaks into stats and JSON output |
//! | `wall-clock`    | `Instant::now` / `SystemTime` anywhere under `crates/` except the path-pinned host-profiler module ([`WALL_CLOCK_FILES`]): wall time is not reproducible |
//! | `lossy-cast`    | a narrowing `as` cast applied to a cycle/latency-named counter: silently truncates long runs |
//! | `lib-unwrap`    | bare `.unwrap()` in library (non-`bin`, non-test) code: panics instead of a typed error (`.expect("why")` documents the invariant and is permitted) |
//! | `forbid-unsafe` | crate root missing `#![forbid(unsafe_code)]`              |
//! | `predecode-bypass` | a `coyote_isa::decode` call in the core step path (`crates/iss/src/core.rs`) or the superblock dispatch path (`crates/iss/src/superblock.rs`): per-retirement decode silently reintroduces the hot-loop cost the predecoded micro-op table ([`coyote_isa::predecode`]) exists to eliminate, and in the superblock path it would dodge the fusion boundary checks; out-of-text PCs must go through `DecodedInst::from_word` |
//!
//! Suppression: a `// audit:allow(<rule>)` comment on the offending
//! line, or heading the comment block directly above it (the directive
//! carries across comment-only lines to the next code line), or a
//! matching entry in the checked-in baseline file (see
//! [`load_baseline`]). The baseline keys
//! findings by rule, file, and whitespace-normalized line *text* — not
//! line number — so unrelated churn does not invalidate it.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule the lint knows, in report order.
pub const RULES: &[&str] = &[
    "hashmap-iter",
    "wall-clock",
    "lossy-cast",
    "lib-unwrap",
    "forbid-unsafe",
    "predecode-bypass",
];

/// Files whose hot step path must dispatch on the predecoded micro-op
/// table instead of calling the decoder per retirement. The superblock
/// dispatch file is pinned alongside the core step path: run
/// validation and fused retirement must consume `DecodedText`
/// slots/plans, never re-decode words — a decoder call there would
/// silently bypass both the predecode table and the fusion boundary
/// checks built on top of it.
pub const PREDECODED_FILES: &[&str] = &["crates/iss/src/core.rs", "crates/iss/src/superblock.rs"];

/// The only files allowed to read the host wall clock. The host-side
/// self-profiler must time real phases and the live status plane must
/// pace its snapshot cadence, so the clock lives in exactly these
/// modules whose APIs cannot leak an `Instant` into simulated state;
/// everywhere else `Instant::now` / `SystemTime` still fires the
/// `wall-clock` rule. Path-pinned (not `audit:allow`-commented) so
/// moving or copying the code revokes the exception automatically.
pub const WALL_CLOCK_FILES: &[&str] = &[
    "crates/telemetry/src/hostprof.rs",
    "crates/telemetry/src/live.rs",
];

/// Crates whose iteration order feeds statistics or exported JSON.
pub const MODEL_CRATES: &[&str] = &["mem", "iss", "core", "telemetry"];

/// One rule violation at one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (an entry of [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.text
        )
    }
}

/// The baseline key for a finding: `rule<TAB>file<TAB>normalized text`.
#[must_use]
pub fn baseline_key(finding: &Finding) -> String {
    format!(
        "{}\t{}\t{}",
        finding.rule,
        finding.file,
        normalize_ws(&finding.text)
    )
}

fn normalize_ws(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Loads a baseline file: one [`baseline_key`] per line, `#` comments
/// and blank lines ignored. A missing file is an empty baseline.
///
/// # Errors
///
/// Propagates I/O errors other than "not found".
pub fn load_baseline(path: &Path) -> io::Result<BTreeSet<String>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect())
}

/// Drops findings whose [`baseline_key`] appears in `baseline`.
/// Returns the surviving findings and the number suppressed.
#[must_use]
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &BTreeSet<String>,
) -> (Vec<Finding>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for finding in findings {
        if baseline.contains(&baseline_key(&finding)) {
            suppressed += 1;
        } else {
            kept.push(finding);
        }
    }
    (kept, suppressed)
}

/// Scans every `.rs` file under `crates/*/src` of `root`, in sorted
/// path order (the lint dogfoods the determinism it enforces).
///
/// # Errors
///
/// Propagates directory-walk and file-read failures.
pub fn scan_repo(root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|path| path.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let source = fs::read_to_string(&file)?;
            findings.extend(scan_file(&rel, &source));
        }
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|entry| entry.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path.clone());
        }
    }
    Ok(())
}

/// One source line after preprocessing: executable text with string
/// literals blanked and comments removed, plus the comment text (for
/// `audit:allow` directives).
struct Prepared {
    code: String,
    comment: String,
}

/// Strips comments and literals across lines, tracking block-comment
/// nesting. String/char contents are replaced with spaces so column
/// positions stay meaningful; comment text is captured separately.
#[derive(Default)]
struct Stripper {
    block_depth: usize,
}

impl Stripper {
    #[allow(clippy::too_many_lines)]
    fn strip(&mut self, line: &str) -> Prepared {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            if self.block_depth > 0 {
                if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    self.block_depth -= 1;
                    i += 2;
                } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    self.block_depth += 1;
                    i += 2;
                } else {
                    comment.push(bytes[i]);
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    comment.extend(&bytes[i + 2..]);
                    break;
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    self.block_depth += 1;
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    code.push('"');
                }
                'r' if bytes.get(i + 1) == Some(&'"') || bytes.get(i + 1) == Some(&'#') => {
                    // Raw string: r"..." or r#"..."# (single level is
                    // all this codebase uses).
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        j += 1;
                        'raw: while j < bytes.len() {
                            if bytes[j] == '"' {
                                let mut k = j + 1;
                                let mut seen = 0;
                                while seen < hashes && bytes.get(k) == Some(&'#') {
                                    seen += 1;
                                    k += 1;
                                }
                                if seen == hashes {
                                    j = k;
                                    break 'raw;
                                }
                            }
                            j += 1;
                        }
                        code.push('"');
                        code.push('"');
                        i = j;
                    } else {
                        code.push('r');
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal ('x', '\n', '\u{..}') vs lifetime
                    // ('a in generics). A literal always closes with a
                    // quote nearby; a lifetime never does.
                    let close = if bytes.get(i + 1) == Some(&'\\') {
                        bytes[i + 2..]
                            .iter()
                            .position(|&c| c == '\'')
                            .map(|p| i + 2 + p)
                    } else {
                        (bytes.get(i + 2) == Some(&'\'')).then_some(i + 2)
                    };
                    if let Some(end) = close {
                        code.push('\'');
                        code.push('\'');
                        i = end + 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        Prepared { code, comment }
    }
}

/// Parses `audit:allow(rule-a, rule-b)` directives out of comment text.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("audit:allow(") {
        rest = &rest[pos + "audit:allow(".len()..];
        if let Some(end) = rest.find(')') {
            for rule in rest[..end].split(',') {
                allows.push(rule.trim().to_owned());
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    allows
}

/// True when `c` can be part of a Rust identifier.
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extracts the identifier ending at byte offset `end` (exclusive).
fn ident_before(code: &str, end: usize) -> Option<&str> {
    let head = &code[..end];
    let start = head
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c))
        .last()
        .map(|(idx, _)| idx)?;
    let ident = &head[start..];
    (!ident.is_empty() && !ident.chars().next().is_some_and(char::is_numeric)).then_some(ident)
}

/// Identifier names that denote cycle/latency counters for the
/// `lossy-cast` rule.
fn is_time_counter(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    ["cycle", "latency", "elapsed", "timestamp", "deadline"]
        .iter()
        .any(|needle| lower.contains(needle))
        || ["now", "time", "delta"].contains(&lower.as_str())
}

/// Narrowing cast targets for `lossy-cast`. `usize`/`u64` are wide
/// enough for any counter this simulator tracks.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Finds `ident as <narrow>` where `ident` names a time counter.
fn lossy_cast_hit(code: &str) -> bool {
    let mut rest = code;
    let mut offset = 0;
    while let Some(pos) = rest.find(" as ") {
        let abs = offset + pos;
        let after = &code[abs + 4..];
        let ty: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
        if NARROW_TYPES.contains(&ty.as_str()) {
            if let Some(ident) = ident_before(code, abs) {
                if is_time_counter(ident) {
                    return true;
                }
            }
        }
        rest = &rest[pos + 4..];
        offset = abs + 4;
    }
    false
}

/// Methods whose call on a hash map/set observes iteration order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// Does `code` declare `ident` with a *default-hasher* std hash
/// collection? Custom-hasher aliases (`FastMap`, `AddrMap`) carry a
/// third type parameter and are deterministic by construction.
fn hash_decl(code: &str) -> Option<String> {
    for (marker, default_params) in [("HashMap", 2usize), ("HashSet", 1usize)] {
        let mut offset = 0;
        while let Some(pos) = code[offset..].find(marker) {
            let abs = offset + pos;
            offset = abs + marker.len();
            // Reject identifiers that merely contain the marker
            // (e.g. `FastHashMapish`).
            if abs > 0 && code[..abs].chars().next_back().is_some_and(is_ident_char) {
                continue;
            }
            let after = &code[abs + marker.len()..];
            let generic_ok = if let Some(rest) = after.strip_prefix('<') {
                // Count top-level commas: params == default_params
                // means the default (seeded) hasher.
                let mut depth = 1usize;
                let mut commas = 0usize;
                for c in rest.chars() {
                    match c {
                        '<' | '(' | '[' => depth += 1,
                        '>' | ')' | ']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => commas += 1,
                        _ => {}
                    }
                }
                commas + 1 == default_params
            } else {
                // `HashMap::new()` / `HashMap::default()` etc. always
                // produce the default hasher.
                after.starts_with("::")
            };
            if !generic_ok {
                continue;
            }
            // Find the identifier being declared: `let [mut] name:` or
            // `let [mut] name =` earlier on the line, or a struct
            // field `name: HashMap<..>`.
            let head = &code[..abs];
            if let Some(colon) = head.rfind(':') {
                let trimmed = head[..colon].trim_end();
                if let Some(ident) = ident_before(trimmed, trimmed.len()) {
                    return Some(ident.to_owned());
                }
            }
            if let Some(eq) = head.rfind('=') {
                let trimmed = head[..eq].trim_end();
                let trimmed = trimmed.strip_suffix(':').unwrap_or(trimmed).trim_end();
                if let Some(ident) = ident_before(trimmed, trimmed.len()) {
                    return Some(ident.to_owned());
                }
            }
        }
    }
    None
}

/// Does `code` iterate `ident` (declared as a default-hasher map/set)?
fn iterates_hazard(code: &str, ident: &str) -> bool {
    let mut offset = 0;
    while let Some(pos) = code[offset..].find(ident) {
        let abs = offset + pos;
        offset = abs + ident.len();
        let bounded_left = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| is_ident_char(c) || c == '.');
        if !bounded_left {
            continue;
        }
        let after = &code[abs + ident.len()..];
        if after.chars().next().is_some_and(is_ident_char) {
            continue;
        }
        if ITER_METHODS.iter().any(|m| after.starts_with(m)) {
            return true;
        }
        // `for (k, v) in &map` / `for k in map` — the ident appears
        // after ` in ` on a `for` line.
        if code.contains("for ") {
            if let Some(in_pos) = code.find(" in ") {
                if abs > in_pos {
                    return true;
                }
            }
        }
    }
    false
}

/// Whether `code` invokes the instruction decoder: a
/// `coyote_isa::decode` path (call or import) or a bare `decode(` call
/// at a token boundary. Suffixed identifiers such as `predecode(` and
/// the sanctioned slow path `DecodedInst::from_word(` do not match.
fn decoder_call_hit(code: &str) -> bool {
    if code.contains("coyote_isa::decode") || code.contains("decode::decode") {
        return true;
    }
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("decode(") {
        let abs = from + pos;
        let boundary = abs == 0 || {
            let c = bytes[abs - 1] as char;
            !(c.is_ascii_alphanumeric() || c == '_')
        };
        if boundary {
            return true;
        }
        from = abs + 1;
    }
    false
}

/// Scans one file. `repo_rel` is the `/`-separated repo-relative path
/// (used for crate classification and finding locations); `source` is
/// the file contents. Pure — fixture tests call this directly.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn scan_file(repo_rel: &str, source: &str) -> Vec<Finding> {
    let crate_name = repo_rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    let is_model = MODEL_CRATES.contains(&crate_name);
    let is_predecoded = PREDECODED_FILES.contains(&repo_rel);
    let is_wall_clock_exempt = WALL_CLOCK_FILES.contains(&repo_rel);
    let is_bin = repo_rel.contains("/bin/") || repo_rel.ends_with("/main.rs");
    let is_crate_root = repo_rel.ends_with("src/lib.rs");

    let lines: Vec<&str> = source.lines().collect();
    let mut stripper = Stripper::default();
    let mut prepared = Vec::with_capacity(lines.len());
    let mut allows: Vec<Vec<String>> = Vec::with_capacity(lines.len());
    let mut file_allows: BTreeSet<String> = BTreeSet::new();
    for line in &lines {
        let prep = stripper.strip(line);
        let line_allows = parse_allows(&prep.comment);
        for allow in &line_allows {
            file_allows.insert(allow.clone());
        }
        allows.push(line_allows);
        prepared.push(prep);
    }

    // Pass 1: default-hasher map/set declarations.
    let mut hazards: Vec<String> = Vec::new();
    for prep in &prepared {
        if let Some(ident) = hash_decl(&prep.code) {
            if !hazards.contains(&ident) {
                hazards.push(ident);
            }
        }
    }

    // A directive on a comment-only line suppresses the next code
    // line, so one `audit:allow` heads a multi-line justification
    // comment; a directive on a code line suppresses that line.
    let mut effective: Vec<Vec<String>> = vec![Vec::new(); prepared.len()];
    let mut carried: Vec<String> = Vec::new();
    for (idx, prep) in prepared.iter().enumerate() {
        let mut here = allows[idx].clone();
        let code_only_ws = prep.code.trim().is_empty();
        if code_only_ws {
            carried.append(&mut here);
        } else {
            here.append(&mut carried);
            effective[idx] = here;
        }
    }
    let allowed = |idx: usize, rule: &str| -> bool { effective[idx].iter().any(|a| a == rule) };

    // Pass 2: per-line rules, skipping test regions.
    let mut findings = Vec::new();
    let mut depth = 0i64;
    let mut pending_test_attr = false;
    let mut test_region_depth: Option<i64> = None;

    for (idx, prep) in prepared.iter().enumerate() {
        let code = prep.code.as_str();
        let trimmed_attr = code.trim();
        if trimmed_attr.starts_with("#[cfg(test)]") || trimmed_attr.starts_with("#[test]") {
            pending_test_attr = true;
        }

        let depth_before = depth;
        let mut opens_brace = false;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opens_brace = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if pending_test_attr && opens_brace && test_region_depth.is_none() {
            test_region_depth = Some(depth_before);
            pending_test_attr = false;
        }
        let in_test = test_region_depth.is_some();
        if let Some(region) = test_region_depth {
            if depth <= region {
                test_region_depth = None;
            }
        }
        if in_test {
            continue;
        }

        let mut push = |rule: &'static str| {
            if !allowed(idx, rule) {
                findings.push(Finding {
                    rule,
                    file: repo_rel.to_owned(),
                    line: idx + 1,
                    text: lines[idx].trim().to_owned(),
                });
            }
        };

        if !is_wall_clock_exempt && (code.contains("Instant::now") || code.contains("SystemTime")) {
            push("wall-clock");
        }
        if !is_bin && code.contains(".unwrap()") {
            push("lib-unwrap");
        }
        if lossy_cast_hit(code) {
            push("lossy-cast");
        }
        if is_model && hazards.iter().any(|h| iterates_hazard(code, h)) {
            push("hashmap-iter");
        }
        if is_predecoded && decoder_call_hit(code) {
            push("predecode-bypass");
        }
    }

    if is_crate_root
        && !source.contains("#![forbid(unsafe_code)]")
        && !file_allows.contains("forbid-unsafe")
    {
        findings.push(Finding {
            rule: "forbid-unsafe",
            file: repo_rel.to_owned(),
            line: 1,
            text: "missing #![forbid(unsafe_code)] in crate root".to_owned(),
        });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_strings_and_comments() {
        let mut s = Stripper::default();
        let prep = s.strip(r#"let x = "Instant::now()"; // audit:allow(wall-clock)"#);
        assert!(!prep.code.contains("Instant"));
        assert_eq!(parse_allows(&prep.comment), vec!["wall-clock"]);
    }

    #[test]
    fn stripper_tracks_block_comments() {
        let mut s = Stripper::default();
        let a = s.strip("code(); /* begin");
        assert!(a.code.contains("code"));
        let b = s.strip("Instant::now() still comment */ after();");
        assert!(!b.code.contains("Instant"));
        assert!(b.code.contains("after"));
    }

    #[test]
    fn hash_decl_distinguishes_hashers() {
        assert_eq!(
            hash_decl("let mut per_line: HashMap<u64, usize> = HashMap::new();"),
            Some("per_line".to_owned())
        );
        assert_eq!(
            hash_decl("pages: HashMap<u64, V, BuildHasherDefault<H>>,"),
            None
        );
        assert_eq!(
            hash_decl("let s: HashSet<u64> = HashSet::new();"),
            Some("s".to_owned())
        );
    }

    #[test]
    fn lossy_cast_targets_time_counters_only() {
        assert!(lossy_cast_hit("let x = cycle as u32;"));
        assert!(lossy_cast_hit("push(latency as u16)"));
        assert!(!lossy_cast_hit("let imm = word as i32;"));
        assert!(!lossy_cast_hit("let wide = cycle as u64;"));
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\nfn tail() { y.unwrap() }\n";
        let findings = scan_file("crates/mem/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn baseline_suppresses_by_text_not_line() {
        let finding = Finding {
            rule: "lib-unwrap",
            file: "crates/mem/src/x.rs".to_owned(),
            line: 42,
            text: "let v =   thing.unwrap();".to_owned(),
        };
        let mut baseline = BTreeSet::new();
        baseline.insert("lib-unwrap\tcrates/mem/src/x.rs\tlet v = thing.unwrap();".to_owned());
        let (kept, suppressed) = apply_baseline(vec![finding], &baseline);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
    }
}
