//! `coyote-audit`: the determinism gate.
//!
//! ```text
//! coyote-audit --lint [--root DIR] [--baseline FILE] [--json | --format json]
//! coyote-audit --race --config NAME [--perturb-seed N] [--jobs N] [--profile] [--certify] [--json]
//! coyote-audit --race --all [--json]
//! ```
//!
//! `--lint` walks `crates/*/src` applying the static determinism rules
//! (see `coyote_lint::lint`); exit code 1 means new violations.
//! `--format json` emits machine-readable findings keyed
//! `rule`/`file`/`line`/`snippet` (the legacy `--json` shape keeps its
//! `text` key for existing consumers).
//! `--race` runs the named repro configuration twice — canonical and
//! schedule-perturbed — and diffs the results (see
//! `coyote_lint::race`); exit code 1 means a schedule race. With
//! `--jobs N` the perturbed run also executes its cores on N host
//! threads, so the same diff proves the parallel execute phase is
//! bit-identical to the sequential schedule. With `--profile` both
//! runs carry counter-mode host profiling, extending the byte-for-byte
//! metrics diff over the `host_profile` section (requires jobs = 1:
//! the phase shape legitimately differs under a parallel execute
//! phase). With `--certify` the perturbed run carries a static
//! disjointness certificate while the baseline keeps the dynamic
//! conflict sweeps, so the same diff proves the certified fast path is
//! observationally identical down to digest and metrics bytes. With
//! `--status` both runs stream live status snapshots to a temp file
//! while being diffed, so the same diff proves the introspection plane
//! is observation-only.

use std::path::PathBuf;
use std::process::ExitCode;

use coyote::JsonValue;
use coyote_lint::lint::{apply_baseline, load_baseline, scan_repo};
use coyote_lint::race::{self, CONFIG_NAMES};

const USAGE: &str =
    "usage: coyote-audit --lint [--root DIR] [--baseline FILE] [--json | --format json]
       coyote-audit --race (--config NAME | --all) [--perturb-seed N] [--jobs N] [--profile] \
[--certify] [--status] [--json]";

struct Args {
    lint: bool,
    race: bool,
    root: PathBuf,
    baseline: Option<PathBuf>,
    configs: Vec<String>,
    perturb_seed: u64,
    jobs: usize,
    profile: bool,
    certify: bool,
    status: bool,
    json: bool,
    format_json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        lint: false,
        race: false,
        root: PathBuf::from("."),
        baseline: None,
        configs: Vec::new(),
        perturb_seed: 0,
        jobs: 1,
        profile: false,
        certify: false,
        status: false,
        json: false,
        format_json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--lint" => args.lint = true,
            "--race" => args.race = true,
            "--profile" => args.profile = true,
            "--certify" => args.certify = true,
            "--status" => args.status = true,
            "--json" => args.json = true,
            "--format" => {
                let format = take(&mut it, "--format")?;
                match format.as_str() {
                    "json" => args.format_json = true,
                    "text" => args.format_json = false,
                    other => return Err(format!("--format: unknown format `{other}`\n{USAGE}")),
                }
            }
            "--root" => args.root = PathBuf::from(take(&mut it, "--root")?),
            "--baseline" => args.baseline = Some(PathBuf::from(take(&mut it, "--baseline")?)),
            "--config" => args.configs.push(take(&mut it, "--config")?),
            "--all" => args
                .configs
                .extend(CONFIG_NAMES.iter().map(|&n| n.to_owned())),
            "--perturb-seed" => {
                let raw = take(&mut it, "--perturb-seed")?;
                let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => raw.parse(),
                };
                args.perturb_seed = parsed.map_err(|e| format!("--perturb-seed: {e}"))?;
            }
            "--jobs" => {
                args.jobs = take(&mut it, "--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if args.lint == args.race {
        return Err(format!("pick exactly one of --lint / --race\n{USAGE}"));
    }
    if args.race && args.configs.is_empty() {
        return Err(format!("--race needs --config NAME or --all\n{USAGE}"));
    }
    if args.certify && !args.race {
        return Err(format!("--certify requires --race\n{USAGE}"));
    }
    if args.status && !args.race {
        return Err(format!("--status requires --race\n{USAGE}"));
    }
    if args.format_json && !args.lint {
        return Err(format!("--format json applies to --lint only\n{USAGE}"));
    }
    Ok(args)
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn run_lint(args: &Args) -> Result<bool, String> {
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("audit.baseline"));
    let baseline = load_baseline(&baseline_path)
        .map_err(|e| format!("reading baseline {}: {e}", baseline_path.display()))?;
    let findings = scan_repo(&args.root).map_err(|e| format!("scanning crates/: {e}"))?;
    let total = findings.len();
    let (findings, suppressed) = apply_baseline(findings, &baseline);

    if args.json || args.format_json {
        // `--format json` is the documented machine interface: each
        // finding carries the offending source line under `snippet`.
        // The legacy `--json` shape keeps its `text` key so existing
        // consumers do not break.
        let snippet_key = if args.format_json { "snippet" } else { "text" };
        let items: Vec<JsonValue> = findings
            .iter()
            .map(|f| {
                JsonValue::object()
                    .with("rule", f.rule)
                    .with("file", f.file.clone())
                    .with("line", f.line)
                    .with(snippet_key, f.text.clone())
            })
            .collect();
        let doc = JsonValue::object()
            .with("scanned", total)
            .with("baseline_suppressed", suppressed)
            .with("findings", JsonValue::Array(items));
        println!("{}", doc.to_string_pretty());
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        println!(
            "coyote-audit --lint: {} finding(s), {} baseline-suppressed",
            findings.len(),
            suppressed
        );
    }
    Ok(findings.is_empty())
}

fn run_race(args: &Args) -> Result<bool, String> {
    let mut clean = true;
    let mut reports = Vec::new();
    for name in &args.configs {
        let outcome = race::check(
            name,
            args.perturb_seed,
            args.jobs,
            args.profile,
            args.certify,
            args.status,
            false,
        )?;
        if args.json {
            reports.push(outcome.to_json());
        } else if let Some(divergence) = &outcome.divergence {
            clean = false;
            println!(
                "coyote-audit --race: SCHEDULE RACE in config `{}` (seed {:#x})",
                outcome.config, outcome.perturb_seed
            );
            for observable in &divergence.observables {
                println!("  diverged: {observable}");
            }
            if let Some(cycle) = divergence.cycle {
                println!("  first divergent cycle: {cycle}");
            }
            if let Some(event) = &divergence.baseline_event {
                println!("  canonical schedule: {event}");
            }
            if let Some(event) = &divergence.perturbed_event {
                println!("  perturbed schedule: {event}");
            }
        } else {
            println!(
                "coyote-audit --race: config `{}` deterministic over {} cycles \
                 (seed {:#x}, jobs {}{})",
                outcome.config,
                outcome.cycles,
                outcome.perturb_seed,
                outcome.jobs,
                match (outcome.certified, outcome.status) {
                    (true, true) => ", certified, status-streamed",
                    (true, false) => ", certified",
                    (false, true) => ", status-streamed",
                    (false, false) => "",
                }
            );
        }
        if outcome.divergence.is_some() {
            clean = false;
        }
    }
    if args.json {
        println!("{}", JsonValue::Array(reports).to_string_pretty());
    }
    Ok(clean)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("coyote-audit: {message}");
            return ExitCode::from(2);
        }
    };
    let result = if args.lint {
        run_lint(&args)
    } else {
        run_race(&args)
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("coyote-audit: {message}");
            ExitCode::from(2)
        }
    }
}
