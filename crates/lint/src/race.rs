//! Layer 2: the dynamic schedule-race detector.
//!
//! The hierarchy's event queue orders same-cycle events by arbitration
//! domain (bank, memory controller, tile) with a content-derived
//! canonical rank *inside* each domain; the pop order of different
//! domains within one cycle is an implementation detail that no model
//! state may depend on. [`SimConfig::perturb_seed`] permutes exactly
//! that free order — a legal reordering by construction.
//!
//! The detector runs the same workload twice: once with the canonical
//! schedule (seed 0) and once perturbed. It then compares
//!
//! * per-core exit codes,
//! * the order-insensitive architectural digest
//!   ([`Simulation::determinism_digest`]: final cycle, core stats,
//!   cache counters, console bytes, hierarchy stats, full memory
//!   image), and
//! * the metrics JSON byte-for-byte (with wall time zeroed — host time
//!   is the one legitimately nondeterministic quantity).
//!
//! Any difference is a latent event-ordering race. To localize it, both
//! runs are repeated with hierarchy event logging enabled; per-cycle
//! event multisets are compared under canonical order and the first
//! divergent cycle plus the first differing event pair is reported.

use std::time::Duration;

use coyote::{metrics_json, JsonValue, L2Sharing, Report, RunError, SimConfig, Simulation};
use coyote_kernels::workload::Workload;
use coyote_kernels::MatmulScalar;
use coyote_mem::hierarchy::EventRecord;

/// Perturbation seed used when the caller does not pick one. Any
/// nonzero value works; divergence must not depend on which.
pub const DEFAULT_PERTURB_SEED: u64 = 0x00C0_707E_5EED;

/// Names accepted by [`named_config`], in display order.
pub const CONFIG_NAMES: &[&str] = &["shared-l2", "private-l2", "tiny"];

/// Builds one of the named repro configurations (paper Figure-3
/// systems): `shared-l2` and `private-l2` are 16-core two-tile systems
/// differing in L2 sharing; `tiny` is the fast self-test system.
#[must_use]
pub fn named_config(name: &str) -> Option<(SimConfig, MatmulScalar)> {
    let (sharing, cores, n) = match name {
        "shared-l2" => (L2Sharing::Shared, 16, 20),
        "private-l2" => (L2Sharing::Private, 16, 20),
        "tiny" => (L2Sharing::Shared, 8, 12),
        _ => return None,
    };
    let mut builder = SimConfig::builder()
        .cores(cores)
        .cores_per_tile(8)
        .sharing(sharing)
        .telemetry(true)
        .metrics_interval(500);
    if name == "tiny" {
        // The self-test system is deliberately contended: one bank and
        // scarce MSHRs funnel every same-cycle arrival into the same
        // arbitration domain, so an illegal (non-canonical) drain order
        // visibly reshuffles MSHR grants and queueing delays. The
        // canonical queue must stay deterministic even here.
        builder = builder.banks_per_tile(1).l2(coyote::L2Config {
            bank_size_bytes: 16 * 1024,
            mshrs: 2,
            ..coyote::L2Config::default()
        });
    }
    let config = builder
        .build()
        .expect("named repro config is statically valid");
    Some((config, MatmulScalar::new(n, 0x00C0_707E)))
}

/// Where two schedules diverged.
#[derive(Debug, Clone)]
pub struct RaceDivergence {
    /// What differed between the runs (exit codes, digest, metrics
    /// JSON), in detection order.
    pub observables: Vec<String>,
    /// First cycle whose canonical event multiset differs, when the
    /// event logs localize the race.
    pub cycle: Option<u64>,
    /// The canonical-schedule event at the divergence point.
    pub baseline_event: Option<String>,
    /// The perturbed-schedule event at the divergence point.
    pub perturbed_event: Option<String>,
}

/// Result of one race check.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// The named configuration checked.
    pub config: String,
    /// Whether both runs carried counter-mode host profiling, extending
    /// the byte-for-byte metrics comparison over the `host_profile`
    /// section.
    pub profiled: bool,
    /// Whether both runs streamed live status snapshots while being
    /// diffed — proving the introspection plane is observation-only
    /// (digest and metrics bytes match with the stream attached).
    pub status: bool,
    /// The perturbation seed of the second run.
    pub perturb_seed: u64,
    /// Host threads of the perturbed run's execute phase (the baseline
    /// is always sequential).
    pub jobs: usize,
    /// Whether the perturbed run actually held a static disjointness
    /// certificate at the end of the run (the baseline always runs the
    /// dynamic conflict sweeps). `false` under `--certify` means the
    /// analysis declined or revoked the certificate, so the diff was
    /// vacuous for the fast path.
    pub certified: bool,
    /// Simulated cycles of the canonical run.
    pub cycles: u64,
    /// Hierarchy events compared during localization (0 when the runs
    /// agreed and no localization pass was needed).
    pub events_compared: usize,
    /// `None` when the schedules agreed on every observable.
    pub divergence: Option<RaceDivergence>,
}

impl RaceOutcome {
    /// Renders the outcome as JSON.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let divergence = self.divergence.as_ref().map_or(JsonValue::Null, |d| {
            JsonValue::object()
                .with(
                    "observables",
                    JsonValue::Array(
                        d.observables
                            .iter()
                            .map(|o| JsonValue::Str(o.clone()))
                            .collect(),
                    ),
                )
                .with("cycle", d.cycle.map_or(JsonValue::Null, JsonValue::from))
                .with(
                    "baseline_event",
                    d.baseline_event
                        .clone()
                        .map_or(JsonValue::Null, JsonValue::Str),
                )
                .with(
                    "perturbed_event",
                    d.perturbed_event
                        .clone()
                        .map_or(JsonValue::Null, JsonValue::Str),
                )
        });
        JsonValue::object()
            .with("config", self.config.clone())
            .with("profiled", self.profiled)
            .with("status", self.status)
            .with("perturb_seed", self.perturb_seed)
            .with("jobs", self.jobs)
            .with("certified", self.certified)
            .with("cycles", self.cycles)
            .with("events_compared", self.events_compared)
            .with("divergence", divergence)
    }
}

/// Everything one run produces that the detector diffs.
struct RunArtifacts {
    exit_codes: Option<Vec<i64>>,
    digest: u64,
    metrics: String,
    cycles: u64,
    certified: bool,
    events: Vec<EventRecord>,
}

/// Per-run knobs the detector varies between the baseline and the
/// perturbed schedule.
#[derive(Clone, Copy)]
struct RunKnobs {
    perturb_seed: u64,
    jobs: usize,
    profile: bool,
    certify: bool,
    status: bool,
    log_events: bool,
    inject_unordered_drain: bool,
}

fn run_once(
    mut config: SimConfig,
    workload: &dyn Workload,
    knobs: RunKnobs,
) -> Result<RunArtifacts, String> {
    config.perturb_seed = knobs.perturb_seed;
    config.jobs = knobs.jobs;
    config.certify = knobs.certify;
    if knobs.profile {
        // Counter-mode profiling is a pure function of the simulated
        // schedule, so the metrics diff below extends race detection
        // over the whole `host_profile` section for free. (Wall mode
        // would diff raw nanoseconds — never byte-stable.)
        config.profiling = coyote::ProfMode::Counter;
    }
    let program = workload
        .program(config.cores)
        .map_err(|e| format!("workload failed to assemble: {e}"))?;
    let mut sim = Simulation::new(config, &program).map_err(|e| e.to_string())?;
    workload.populate(&program, sim.memory_mut());
    let status_path = if knobs.status {
        // A short interval so snapshots actually fire during the run;
        // emission is observation-only, so the diff below proves the
        // stream cannot perturb digest or metrics bytes.
        let path = std::env::temp_dir().join(format!(
            "coyote-race-status-{}-s{}-j{}.jsonl",
            std::process::id(),
            knobs.perturb_seed,
            knobs.jobs
        ));
        let emitter =
            coyote::StatusEmitter::create(&path, 1).map_err(|e| format!("status stream: {e}"))?;
        sim.set_status(emitter);
        Some(path)
    } else {
        None
    };
    sim.set_event_log(knobs.log_events);
    if knobs.inject_unordered_drain {
        sim.debug_inject_unordered_drain();
    }
    let mut report: Report = sim.run().map_err(|e: RunError| e.to_string())?;
    // Wall time (and the MIPS rate derived from it) is the one
    // legitimately nondeterministic report field; zero it so the
    // byte-for-byte metrics comparison sees only model state.
    report.wall_time = Duration::ZERO;
    let metrics = metrics_json(&sim, &report).to_string_pretty();
    if let Some(path) = status_path {
        let _ = std::fs::remove_file(&path);
    }
    Ok(RunArtifacts {
        exit_codes: report.exit_codes(),
        digest: sim.determinism_digest(),
        metrics,
        cycles: report.cycles,
        certified: sim.certificate_active(),
        events: sim.take_event_log(),
    })
}

/// Canonical within-cycle event order, so that legal cross-domain
/// reorderings compare equal and only genuine divergence survives.
fn canonical_event_sort(events: &mut [EventRecord]) {
    events.sort_by(|a, b| {
        (a.cycle, a.kind, a.line_addr, a.tag, a.bank, a.tile).cmp(&(
            b.cycle,
            b.kind,
            b.line_addr,
            b.tag,
            b.bank,
            b.tile,
        ))
    });
}

/// Finds the first cycle whose canonical event multisets differ, and
/// the first differing pair there.
fn localize(
    mut baseline: Vec<EventRecord>,
    mut perturbed: Vec<EventRecord>,
) -> (Option<u64>, Option<String>, Option<String>) {
    canonical_event_sort(&mut baseline);
    canonical_event_sort(&mut perturbed);
    let len = baseline.len().max(perturbed.len());
    for i in 0..len {
        match (baseline.get(i), perturbed.get(i)) {
            (Some(a), Some(b)) if a == b => {}
            (a, b) => {
                let cycle = a
                    .map(|r| r.cycle)
                    .into_iter()
                    .chain(b.map(|r| r.cycle))
                    .min();
                return (
                    cycle,
                    a.map(ToString::to_string),
                    b.map(ToString::to_string),
                );
            }
        }
    }
    (None, None, None)
}

/// Runs the schedule-race check on the named configuration.
///
/// `inject_unordered_drain` arms the deliberate `HashMap`-ordered event
/// drain in the hierarchy — the detector's self-test: with the
/// injection the check must report a divergence, without it the check
/// must report none.
///
/// `jobs` sets the host-thread count of the *perturbed* run only; the
/// baseline always runs the sequential `jobs = 1` schedule. Any value
/// above 1 therefore makes one diff prove two independences at once:
/// the results must not depend on the free same-cycle event pop order
/// *or* on the parallel execute phase's sharding and commit protocol.
///
/// `certify` arms static footprint certification on the *perturbed*
/// run only; the baseline always runs the dynamic conflict sweeps. A
/// clean diff then proves the certificate-gated fast path — which
/// skips those sweeps entirely — is observationally identical to the
/// swept schedule, down to digest and metrics bytes.
///
/// `status` attaches a live status stream (1 ms cadence, temp file) to
/// *both* runs; a clean diff then proves the introspection plane is
/// observation-only all the way down to digest and metrics bytes.
///
/// # Errors
///
/// Returns a message for unknown configuration names and for
/// simulation failures unrelated to divergence.
pub fn check(
    name: &str,
    perturb_seed: u64,
    jobs: usize,
    profile: bool,
    certify: bool,
    status: bool,
    inject_unordered_drain: bool,
) -> Result<RaceOutcome, String> {
    let (config, workload) = named_config(name)
        .ok_or_else(|| format!("unknown race config `{name}` (have: {CONFIG_NAMES:?})"))?;
    if profile && jobs > 1 {
        // The phase tree legitimately differs between sequential and
        // parallel execute phases, and the baseline is always jobs=1 —
        // profiled comparisons are only meaningful at matching shapes.
        return Err("--profile requires jobs = 1 (the baseline is sequential)".to_owned());
    }
    if profile && certify {
        // A certified run adds its own profiling spans and counters
        // (the analysis phase, certificate grants), so a profiled diff
        // against the uncertified baseline would flag those legitimate
        // shape differences as a phantom race.
        return Err(
            "--certify cannot be combined with --profile (the certified run \
                    has a legitimately different profile shape)"
                .to_owned(),
        );
    }
    let seed = if perturb_seed == 0 {
        DEFAULT_PERTURB_SEED
    } else {
        perturb_seed
    };

    let baseline_knobs = RunKnobs {
        perturb_seed: 0,
        jobs: 1,
        profile,
        certify: false,
        status,
        log_events: false,
        inject_unordered_drain,
    };
    let perturbed_knobs = RunKnobs {
        perturb_seed: seed,
        jobs,
        certify,
        ..baseline_knobs
    };
    let baseline = run_once(config, &workload, baseline_knobs)?;
    let perturbed = run_once(config, &workload, perturbed_knobs)?;

    let mut observables = Vec::new();
    if baseline.exit_codes != perturbed.exit_codes {
        observables.push(format!(
            "exit codes: {:?} vs {:?}",
            baseline.exit_codes, perturbed.exit_codes
        ));
    }
    if baseline.digest != perturbed.digest {
        observables.push(format!(
            "architectural digest: {:#018x} vs {:#018x}",
            baseline.digest, perturbed.digest
        ));
    }
    if baseline.metrics != perturbed.metrics {
        let line = baseline
            .metrics
            .lines()
            .zip(perturbed.metrics.lines())
            .position(|(a, b)| a != b);
        observables.push(match line {
            Some(idx) => format!("metrics JSON first differs at line {}", idx + 1),
            None => "metrics JSON lengths differ".to_owned(),
        });
    }

    if observables.is_empty() {
        return Ok(RaceOutcome {
            config: name.to_owned(),
            profiled: profile,
            status,
            perturb_seed: seed,
            jobs,
            certified: perturbed.certified,
            cycles: baseline.cycles,
            events_compared: 0,
            divergence: None,
        });
    }

    // Divergence: rerun both schedules with event logging (runs are
    // individually deterministic, so the rerun reproduces them) and
    // localize the first divergent cycle and event pair.
    let baseline_logged = run_once(
        config,
        &workload,
        RunKnobs {
            log_events: true,
            ..baseline_knobs
        },
    )?;
    let perturbed_logged = run_once(
        config,
        &workload,
        RunKnobs {
            log_events: true,
            ..perturbed_knobs
        },
    )?;
    let events_compared = baseline_logged
        .events
        .len()
        .max(perturbed_logged.events.len());
    let (cycle, baseline_event, perturbed_event) =
        localize(baseline_logged.events, perturbed_logged.events);

    Ok(RaceOutcome {
        config: name.to_owned(),
        profiled: profile,
        status,
        perturb_seed: seed,
        jobs,
        certified: perturbed.certified,
        cycles: baseline.cycles,
        events_compared,
        divergence: Some(RaceDivergence {
            observables,
            cycle,
            baseline_event,
            perturbed_event,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sort_erases_cross_domain_order() {
        let a = EventRecord {
            cycle: 10,
            kind: "bank-arrive",
            line_addr: 0x100,
            tag: 4,
            bank: 0,
            tile: 0,
        };
        let b = EventRecord {
            cycle: 10,
            kind: "mc-send",
            line_addr: 0x200,
            tag: 8,
            bank: 1,
            tile: 0,
        };
        let mut one = vec![a.clone(), b.clone()];
        let mut two = vec![b, a];
        canonical_event_sort(&mut one);
        canonical_event_sort(&mut two);
        assert_eq!(one, two);
    }

    #[test]
    fn localize_names_first_divergent_cycle() {
        let mk = |cycle, line_addr| EventRecord {
            cycle,
            kind: "bank-arrive",
            line_addr,
            tag: 0,
            bank: 0,
            tile: 0,
        };
        let base = vec![mk(5, 0x40), mk(9, 0x80)];
        let pert = vec![mk(5, 0x40), mk(9, 0xc0)];
        let (cycle, a, b) = localize(base, pert);
        assert_eq!(cycle, Some(9));
        assert!(a.unwrap().contains("0x80"));
        assert!(b.unwrap().contains("0xc0"));
    }
}
