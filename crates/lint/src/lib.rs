//! `coyote-lint`: the determinism auditor behind the `coyote-audit`
//! binary.
//!
//! Two analysis layers, both wired into CI as hard gates:
//!
//! * [`lint`] — a hand-rolled static source lint (no `syn`, in keeping
//!   with the vendored-stub, no-external-deps policy) that walks
//!   `crates/*/src` and flags project-specific determinism hazards:
//!   iteration over default-hasher `HashMap`/`HashSet` in model crates,
//!   wall-clock reads, lossy casts on cycle/latency counters, bare
//!   `unwrap()` in library code, and missing `#![forbid(unsafe_code)]`
//!   crate-root attributes. Findings can be suppressed in-source with
//!   `// audit:allow(<rule>)` or via the checked-in `audit.baseline`.
//! * [`race`] — a dynamic schedule-race detector that runs a simulation
//!   twice, the second time with a seeded perturbation of same-cycle
//!   cross-domain event pop order (a legal reordering by the event
//!   queue's arbitration-domain contract), and diffs final
//!   architectural state, hierarchy counters, and the metrics JSON
//!   byte-for-byte. Any difference is a latent event-ordering race and
//!   is reported with the first divergent cycle and event pair.

#![forbid(unsafe_code)]

pub mod lint;
pub mod race;
