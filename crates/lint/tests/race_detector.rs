//! Race-detector self-test: the perturbed schedule must be
//! observationally identical on the real hierarchy, and must diverge
//! when the deliberate `HashMap`-ordered event drain is injected —
//! proving the detector actually fires on a schedule race rather than
//! vacuously passing.

use coyote_lint::race::{check, named_config, DEFAULT_PERTURB_SEED};

#[test]
fn perturbed_schedule_is_clean_on_the_real_hierarchy() {
    let outcome = check("tiny", 0, 1, false, false, false, false).expect("tiny config runs");
    assert_eq!(outcome.perturb_seed, DEFAULT_PERTURB_SEED);
    assert!(outcome.cycles > 0);
    assert!(
        outcome.divergence.is_none(),
        "schedule race on the real hierarchy: {:?}",
        outcome.divergence
    );
}

#[test]
fn injected_hashmap_drain_is_caught() {
    let outcome = check("tiny", 0, 1, false, false, false, true).expect("tiny config runs");
    let divergence = outcome
        .divergence
        .expect("the injected HashMap-ordered drain must be detected as a race");
    assert!(
        !divergence.observables.is_empty(),
        "divergence must name what differed"
    );
    // The localization pass names the first divergent cycle and the
    // event pair from the two schedules.
    assert!(
        divergence.cycle.is_some(),
        "divergence not localized: {divergence:?}"
    );
    assert!(divergence.baseline_event.is_some() || divergence.perturbed_event.is_some());
    assert!(outcome.events_compared > 0);
}

#[test]
fn parallel_execute_phase_is_clean_under_perturbation() {
    // jobs = 4 puts the perturbed run through the parallel execute
    // phase: the diff against the sequential canonical run must still
    // be empty — one check covering both schedule-perturbation and
    // jobs-independence.
    let outcome = check("tiny", 0, 4, false, false, false, false).expect("tiny config runs");
    assert_eq!(outcome.jobs, 4);
    assert!(
        outcome.divergence.is_none(),
        "parallel execute phase diverged from the sequential schedule: {:?}",
        outcome.divergence
    );
}

#[test]
fn unknown_config_is_an_error_not_a_pass() {
    let err = check("no-such-config", 0, 1, false, false, false, false).unwrap_err();
    assert!(err.contains("no-such-config"));
}

#[test]
fn profiled_runs_are_schedule_stable() {
    // With --profile both runs carry counter-mode host profiling, so
    // the byte-for-byte metrics diff also covers the `host_profile`
    // section: phase entry counts, abort taxonomy and distributions
    // must all be pure functions of the simulated schedule.
    let outcome = check("tiny", 0, 1, true, false, false, false).expect("tiny config runs");
    assert!(outcome.profiled);
    assert!(
        outcome.divergence.is_none(),
        "counter-mode profile diverged under perturbation: {:?}",
        outcome.divergence
    );
}

#[test]
fn profiled_injected_race_is_still_caught() {
    let outcome = check("tiny", 0, 1, true, false, false, true).expect("tiny config runs");
    assert!(
        outcome.divergence.is_some(),
        "profiling must not mask the injected drain race"
    );
}

#[test]
fn profile_rejects_parallel_jobs() {
    // The baseline is always sequential; a parallel perturbed run has
    // a legitimately different phase shape, so the combination is
    // rejected rather than reported as a phantom race.
    let err = check("tiny", 0, 4, true, false, false, false).unwrap_err();
    assert!(err.contains("jobs"), "{err}");
}

#[test]
fn certified_run_matches_the_swept_baseline() {
    // With `certify` the perturbed run carries the static disjointness
    // certificate and skips the dynamic conflict sweeps; the baseline
    // keeps them. The matmul workload partitions output rows by
    // mhartid, so the certificate must actually be granted — and the
    // digest and metrics diff against the swept schedule must be empty.
    let outcome = check("tiny", 0, 4, false, true, false, false).expect("tiny config runs");
    assert!(
        outcome.certified,
        "the round-robin matmul should earn a disjointness certificate"
    );
    assert!(
        outcome.divergence.is_none(),
        "certified fast path diverged from the swept schedule: {:?}",
        outcome.divergence
    );
}

#[test]
fn certify_rejects_profiled_comparisons() {
    // The certified run has its own analysis phase and certificate
    // counters, so a profiled byte diff would flag those legitimate
    // differences as a phantom race.
    let err = check("tiny", 0, 1, true, true, false, false).unwrap_err();
    assert!(err.contains("certify"), "{err}");
}

#[test]
fn status_streamed_runs_are_schedule_stable() {
    // With `status` both runs carry a live status emitter at a 1 ms
    // cadence, so snapshots genuinely fire mid-run on both sides of
    // the diff — proving the introspection plane is pure observation
    // even under schedule perturbation.
    let outcome = check("tiny", 0, 1, false, false, true, false).expect("tiny config runs");
    assert!(outcome.status);
    assert!(
        outcome.divergence.is_none(),
        "status streaming diverged under perturbation: {:?}",
        outcome.divergence
    );
}

#[test]
fn status_streamed_injected_race_is_still_caught() {
    let outcome = check("tiny", 0, 1, false, false, true, true).expect("tiny config runs");
    assert!(
        outcome.divergence.is_some(),
        "status streaming must not mask the injected drain race"
    );
}

#[test]
fn named_configs_differ_in_sharing_only() {
    let (shared, _) = named_config("shared-l2").unwrap();
    let (private, _) = named_config("private-l2").unwrap();
    assert_eq!(shared.cores, private.cores);
    assert_ne!(
        format!("{:?}", shared.sharing),
        format!("{:?}", private.sharing)
    );
}
