//! Fixture: the superblock dispatch path re-decodes instruction words
//! during run validation instead of consuming the predecoded slots —
//! bypassing both the micro-op table and the fusion boundary checks.

use coyote_isa::decode::decode;

pub fn validate_run(words: &[u32], pc: u64) -> u32 {
    let mut len = 0;
    for (i, &word) in words.iter().enumerate() {
        let inst = decode(word).expect("decodes");
        if coyote_isa::decode(word).is_none() {
            break;
        }
        drop(inst);
        len = i as u32 + 1;
        let _ = pc;
    }
    len
}
