//! Fixture twin: the step path hits the predecoded table; out-of-text
//! PCs go through the sanctioned `DecodedInst::from_word` slow path,
//! and `predecode(` itself must not trip the token-boundary check.

pub fn step(text: &DecodedText, pc: u64, word: u32) -> Option<DecodedInst> {
    if let Some(entry) = text.entry(pc) {
        return Some(entry.clone());
    }
    DecodedInst::from_word(word)
}

pub fn load(words: &[u32]) -> Vec<Option<DecodedInst>> {
    coyote_isa::predecode(words)
}
