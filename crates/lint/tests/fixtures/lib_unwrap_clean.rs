pub fn parse(input: &str) -> Result<u64, std::num::ParseIntError> {
    input.parse()
}

pub fn invariant(values: &[u64]) -> u64 {
    *values
        .first()
        .expect("caller guarantees a non-empty slice")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::parse("7").unwrap(), 7);
    }
}
