pub fn bucket(cycle: u64, latency: u64) -> (u32, u16) {
    let short_cycle = cycle as u32;
    let short_latency = latency as u16;
    (short_cycle, short_latency)
}
