pub fn bucket(cycle: u64, latency: u64, word: u64) -> (u64, u64, u32) {
    // Counters stay wide; only non-temporal bit manipulation narrows.
    let imm = word as u32;
    (cycle, latency, imm)
}
