use std::time::Instant;

pub fn stamp() -> u128 {
    let started = Instant::now();
    started.elapsed().as_nanos()
}
