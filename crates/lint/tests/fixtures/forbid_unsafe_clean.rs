//! A crate root with the forbid attribute.

#![forbid(unsafe_code)]

pub fn noop() {}
