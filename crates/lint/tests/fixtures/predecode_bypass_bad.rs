//! Fixture: the core step path calls the instruction decoder per
//! retirement instead of dispatching on the predecoded micro-op table.

use coyote_isa::decode::decode;

pub fn step(word: u32) -> u64 {
    let inst = decode(word).expect("decodes");
    let again = coyote_isa::decode(word);
    drop(again);
    inst.len()
}
