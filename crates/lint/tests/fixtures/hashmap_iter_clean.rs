use std::collections::BTreeMap;

pub fn export(counts: &BTreeMap<u64, u64>) -> Vec<String> {
    let mut rows = Vec::new();
    let mut per_line: BTreeMap<u64, usize> = BTreeMap::new();
    per_line.insert(1, 2);
    for (addr, count) in per_line {
        rows.push(format!("{addr},{count}"));
    }
    for (addr, count) in counts.iter() {
        rows.push(format!("{addr},{count}"));
    }
    rows
}
