pub fn stamp(cycle: u64) -> u64 {
    // Simulated time is the only clock the model may read.
    cycle
}
