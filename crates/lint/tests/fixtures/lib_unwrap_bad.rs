pub fn parse(input: &str) -> u64 {
    input.parse().unwrap()
}
