//! Fixture twin: the superblock dispatch path consumes predecoded
//! slots and fuse plans; holes end the run instead of being decoded
//! in place, so no decoder call appears.

pub fn validate_run(text: &DecodedText, pc: u64) -> u32 {
    let Some(start) = text.index_of(pc) else {
        return 0;
    };
    let mut len = 0;
    while let Some(entry) = text.slot(start + len as usize) {
        if text.plan(start + len as usize).is_none() {
            break;
        }
        drop(entry);
        len += 1;
    }
    len
}
