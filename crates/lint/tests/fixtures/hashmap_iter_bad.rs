use std::collections::HashMap;

pub fn export(counts: &HashMap<u64, u64>) -> Vec<String> {
    let mut rows = Vec::new();
    let mut per_line: HashMap<u64, usize> = HashMap::new();
    per_line.insert(1, 2);
    for (addr, count) in per_line.into_iter() {
        rows.push(format!("{addr},{count}"));
    }
    for (addr, count) in counts.iter() {
        rows.push(format!("{addr},{count}"));
    }
    rows
}
