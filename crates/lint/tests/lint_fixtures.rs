//! Fixture tests: one known-bad snippet per rule that must be flagged,
//! and one clean twin that must pass — plus the suppression paths
//! (in-source `audit:allow` and the baseline file).

use std::collections::BTreeSet;

use coyote_lint::lint::{apply_baseline, baseline_key, scan_file, Finding};

/// Scans a fixture as if it lived in a model crate's library source.
fn scan_fixture(source: &str) -> Vec<Finding> {
    scan_file("crates/mem/src/fixture.rs", source)
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn hashmap_iter_flagged_and_clean_twin_passes() {
    let bad = scan_fixture(include_str!("fixtures/hashmap_iter_bad.rs"));
    assert!(
        rules(&bad).contains(&"hashmap-iter"),
        "expected hashmap-iter in {bad:?}"
    );
    // Both the local `per_line` and the `counts` parameter iterate.
    assert!(bad.iter().filter(|f| f.rule == "hashmap-iter").count() >= 2);
    let clean = scan_fixture(include_str!("fixtures/hashmap_iter_clean.rs"));
    assert!(clean.is_empty(), "clean twin flagged: {clean:?}");
}

#[test]
fn hashmap_iter_only_applies_to_model_crates() {
    let outside = scan_file(
        "crates/asm/src/fixture.rs",
        include_str!("fixtures/hashmap_iter_bad.rs"),
    );
    assert!(!rules(&outside).contains(&"hashmap-iter"));
}

#[test]
fn wall_clock_flagged_and_clean_twin_passes() {
    let bad = scan_fixture(include_str!("fixtures/wall_clock_bad.rs"));
    assert!(rules(&bad).contains(&"wall-clock"), "{bad:?}");
    let clean = scan_fixture(include_str!("fixtures/wall_clock_clean.rs"));
    assert!(clean.is_empty(), "clean twin flagged: {clean:?}");
}

#[test]
fn wall_clock_exception_is_path_pinned_to_the_hostprof_module() {
    // The allowlisted paths (the host profiler and the live status
    // emitter) may read the clock with no `audit:allow` comment at
    // all...
    for path in [
        "crates/telemetry/src/hostprof.rs",
        "crates/telemetry/src/live.rs",
    ] {
        let pinned = scan_file(path, include_str!("fixtures/wall_clock_bad.rs"));
        assert!(
            !rules(&pinned).contains(&"wall-clock"),
            "{path} must be exempt: {pinned:?}"
        );
    }
    // ...while the identical code anywhere else — even elsewhere in
    // the telemetry crate, or in the orchestrator — still fires. The
    // live.rs exemption must not weaken the rule for any other file.
    for path in [
        "crates/telemetry/src/hist.rs",
        "crates/telemetry/src/lib.rs",
        "crates/core/src/sim.rs",
        "crates/core/src/flight.rs",
        "crates/mem/src/hierarchy.rs",
    ] {
        let elsewhere = scan_file(path, include_str!("fixtures/wall_clock_bad.rs"));
        assert!(
            rules(&elsewhere).contains(&"wall-clock"),
            "{path} must not inherit the wall-clock exception: {elsewhere:?}"
        );
    }
}

#[test]
fn lossy_cast_flagged_and_clean_twin_passes() {
    let bad = scan_fixture(include_str!("fixtures/lossy_cast_bad.rs"));
    assert_eq!(
        bad.iter().filter(|f| f.rule == "lossy-cast").count(),
        2,
        "{bad:?}"
    );
    let clean = scan_fixture(include_str!("fixtures/lossy_cast_clean.rs"));
    assert!(clean.is_empty(), "clean twin flagged: {clean:?}");
}

#[test]
fn lib_unwrap_flagged_and_clean_twin_passes() {
    let bad = scan_fixture(include_str!("fixtures/lib_unwrap_bad.rs"));
    assert!(rules(&bad).contains(&"lib-unwrap"), "{bad:?}");
    // Clean twin: typed error, documented expect, unwrap inside
    // #[cfg(test)] — none flagged.
    let clean = scan_fixture(include_str!("fixtures/lib_unwrap_clean.rs"));
    assert!(clean.is_empty(), "clean twin flagged: {clean:?}");
}

#[test]
fn lib_unwrap_not_applied_to_bins() {
    let bin = scan_file(
        "crates/mem/src/bin/tool.rs",
        include_str!("fixtures/lib_unwrap_bad.rs"),
    );
    assert!(!rules(&bin).contains(&"lib-unwrap"));
}

#[test]
fn predecode_bypass_flagged_in_the_core_step_file_only() {
    let bad = scan_file(
        "crates/iss/src/core.rs",
        include_str!("fixtures/predecode_bypass_bad.rs"),
    );
    assert!(
        bad.iter().filter(|f| f.rule == "predecode-bypass").count() >= 2,
        "expected the decode import and both call forms flagged: {bad:?}"
    );
    // The sanctioned slow path (`DecodedInst::from_word`) and the
    // `predecode(` loader must not trip the token-boundary check.
    let clean = scan_file(
        "crates/iss/src/core.rs",
        include_str!("fixtures/predecode_bypass_clean.rs"),
    );
    assert!(
        !rules(&clean).contains(&"predecode-bypass"),
        "clean twin flagged: {clean:?}"
    );
    // Decoding is fine everywhere else — the rule pins only the hot
    // step path.
    let elsewhere = scan_file(
        "crates/iss/src/exec.rs",
        include_str!("fixtures/predecode_bypass_bad.rs"),
    );
    assert!(!rules(&elsewhere).contains(&"predecode-bypass"));
}

#[test]
fn predecode_bypass_pins_the_superblock_dispatch_file() {
    // Run validation that re-decodes words bypasses the predecoded
    // table *and* the fusion boundary checks — pinned like core.rs.
    let bad = scan_file(
        "crates/iss/src/superblock.rs",
        include_str!("fixtures/superblock_bypass_bad.rs"),
    );
    assert!(
        bad.iter().filter(|f| f.rule == "predecode-bypass").count() >= 2,
        "expected the decode import and both call forms flagged: {bad:?}"
    );
    // The sanctioned shape — walking `DecodedText` slots and fuse
    // plans, ending the run at a hole — must stay clean.
    let clean = scan_file(
        "crates/iss/src/superblock.rs",
        include_str!("fixtures/superblock_bypass_clean.rs"),
    );
    assert!(
        !rules(&clean).contains(&"predecode-bypass"),
        "clean twin flagged: {clean:?}"
    );
    // The static planner (crates/isa) legitimately inspects decoded
    // micro-ops it is handed; only the dispatch file is pinned.
    let planner = scan_file(
        "crates/isa/src/superblock.rs",
        include_str!("fixtures/superblock_bypass_bad.rs"),
    );
    assert!(!rules(&planner).contains(&"predecode-bypass"));
}

#[test]
fn forbid_unsafe_flagged_on_crate_roots_only() {
    let bad = scan_file(
        "crates/mem/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_bad.rs"),
    );
    assert_eq!(rules(&bad), vec!["forbid-unsafe"]);
    let clean = scan_file(
        "crates/mem/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_clean.rs"),
    );
    assert!(clean.is_empty(), "clean twin flagged: {clean:?}");
    // Non-root files are not required to carry the attribute.
    let non_root = scan_file(
        "crates/mem/src/other.rs",
        include_str!("fixtures/forbid_unsafe_bad.rs"),
    );
    assert!(non_root.is_empty());
}

#[test]
fn audit_allow_suppresses_on_line_and_from_comment_block_above() {
    let same_line = "fn f(v: Option<u8>) -> u8 { v.unwrap() } // audit:allow(lib-unwrap)\n";
    assert!(scan_fixture(same_line).is_empty());

    let block_above = "\
// audit:allow(lib-unwrap): the caller checked is_some() and this
// multi-line justification carries down to the code line.
fn f(v: Option<u8>) -> u8 { v.unwrap() }
";
    assert!(scan_fixture(block_above).is_empty());

    // The directive names a *different* rule: no suppression.
    let wrong_rule = "// audit:allow(wall-clock)\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    assert_eq!(rules(&scan_fixture(wrong_rule)), vec!["lib-unwrap"]);
}

#[test]
fn strings_and_comments_do_not_trip_rules() {
    let source = "\
pub fn describe() -> &'static str {
    // Instant::now() in a comment is fine.
    \"call Instant::now() and x.unwrap() for cycle as u32\"
}
";
    assert!(scan_fixture(source).is_empty());
}

#[test]
fn baseline_round_trips_through_keys() {
    let findings = scan_fixture(include_str!("fixtures/lossy_cast_bad.rs"));
    assert!(!findings.is_empty());
    let baseline: BTreeSet<String> = findings.iter().map(baseline_key).collect();
    let (kept, suppressed) = apply_baseline(findings.clone(), &baseline);
    assert!(kept.is_empty());
    assert_eq!(suppressed, findings.len());
}
