//! CLI-level tests for `coyote-audit --lint`: the machine-readable
//! `--format json` output shape is pinned here so downstream consumers
//! (CI annotators, editors) can rely on its keys.

use std::path::PathBuf;
use std::process::Command;

use coyote::{parse_json, JsonValue};

fn audit_binary() -> &'static str {
    env!("CARGO_BIN_EXE_coyote-audit")
}

/// Builds a throwaway repo root containing one model-crate source file
/// with known violations, and returns the root.
fn fixture_root(name: &str, source: &str) -> PathBuf {
    let root = std::env::temp_dir().join("coyote-audit-tests").join(name);
    let src = root.join("crates/mem/src");
    std::fs::create_dir_all(&src).expect("create fixture tree");
    std::fs::write(src.join("fixture.rs"), source).expect("write fixture");
    root
}

#[test]
fn format_json_emits_rule_file_line_snippet() {
    let root = fixture_root(
        "format-json",
        "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    let output = Command::new(audit_binary())
        .args(["--lint", "--format", "json", "--root"])
        .arg(&root)
        .output()
        .expect("spawn coyote-audit");
    // Findings present: the gate fails (exit 1) but the JSON is valid.
    assert_eq!(output.status.code(), Some(1));
    let doc = parse_json(&String::from_utf8_lossy(&output.stdout)).expect("valid JSON");

    assert!(doc.get("scanned").and_then(JsonValue::as_u64).is_some());
    assert!(doc
        .get("baseline_suppressed")
        .and_then(JsonValue::as_u64)
        .is_some());
    let findings = doc
        .get("findings")
        .and_then(|v| v.as_array())
        .expect("findings array");
    assert!(!findings.is_empty(), "wall-clock fixture must be flagged");
    for finding in findings {
        assert_eq!(
            finding.get("rule").and_then(|v| v.as_str()),
            Some("wall-clock")
        );
        let file = finding.get("file").and_then(|v| v.as_str()).expect("file");
        assert!(file.ends_with("fixture.rs"), "{file}");
        assert_eq!(finding.get("line").and_then(JsonValue::as_u64), Some(2));
        let snippet = finding
            .get("snippet")
            .and_then(|v| v.as_str())
            .expect("snippet key");
        assert!(snippet.contains("Instant::now"), "{snippet}");
        // The legacy key must NOT leak into the new shape.
        assert!(finding.get("text").is_none(), "legacy `text` key present");
    }
}

#[test]
fn legacy_json_flag_keeps_the_text_key() {
    let root = fixture_root(
        "legacy-json",
        "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    let output = Command::new(audit_binary())
        .args(["--lint", "--json", "--root"])
        .arg(&root)
        .output()
        .expect("spawn coyote-audit");
    assert_eq!(output.status.code(), Some(1));
    let doc = parse_json(&String::from_utf8_lossy(&output.stdout)).expect("valid JSON");
    let findings = doc
        .get("findings")
        .and_then(|v| v.as_array())
        .expect("findings array");
    assert!(!findings.is_empty());
    for finding in findings {
        assert!(finding.get("text").is_some(), "legacy shape keeps `text`");
        assert!(finding.get("snippet").is_none());
    }
}

#[test]
fn format_json_on_a_clean_tree_passes_with_empty_findings() {
    let root = fixture_root("clean-tree", "pub fn five() -> u64 {\n    5\n}\n");
    let output = Command::new(audit_binary())
        .args(["--lint", "--format", "json", "--root"])
        .arg(&root)
        .output()
        .expect("spawn coyote-audit");
    assert_eq!(output.status.code(), Some(0));
    let doc = parse_json(&String::from_utf8_lossy(&output.stdout)).expect("valid JSON");
    let findings = doc
        .get("findings")
        .and_then(|v| v.as_array())
        .expect("findings array");
    assert!(findings.is_empty());
}

#[test]
fn bad_format_and_misplaced_flags_are_usage_errors() {
    let output = Command::new(audit_binary())
        .args(["--lint", "--format", "yaml"])
        .output()
        .expect("spawn coyote-audit");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("yaml"));

    // --format json is a --lint option; --certify is a --race option.
    let output = Command::new(audit_binary())
        .args(["--race", "--config", "tiny", "--format", "json"])
        .output()
        .expect("spawn coyote-audit");
    assert_eq!(output.status.code(), Some(2));

    let output = Command::new(audit_binary())
        .args(["--lint", "--certify"])
        .output()
        .expect("spawn coyote-audit");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--certify"));
}
