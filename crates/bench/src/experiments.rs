//! The evaluation experiments beyond Figure 3: one per configuration
//! axis the paper promises (interleaving, L2 sharing, mapping policy,
//! L2 geometry/MSHRs, NoC, the kernel suite, vector vs scalar, and the
//! Paraver trace).
//!
//! Every experiment returns both structured rows and a rendered
//! [`Table`]; the `repro` binary prints the tables recorded in
//! EXPERIMENTS.md.

use coyote::{
    L2Config, L2Sharing, MappingPolicy, McConfig, NocModel, Report, SimConfig, Simulation,
};
use coyote_kernels::workload::{run_workload, Workload};
use coyote_kernels::{
    FftRadix2, MatmulScalar, MatmulVector, MlpInference, SpmvScalar, SpmvVectorAdaptive,
    SpmvVectorCsr, SpmvVectorEll, StencilVector, ThresholdFilter,
};

use crate::table::Table;
use crate::Scale;

fn base_builder(cores: usize) -> coyote::SimConfigBuilder {
    SimConfig::builder().cores(cores).cores_per_tile(8)
}

fn run(workload: &dyn Workload, config: SimConfig) -> (Report, Simulation) {
    run_workload(workload, config).unwrap_or_else(|e| panic!("{} failed: {e}", workload.name()))
}

/// Spike-interleaving ablation (§III-A): with interleaving disabled
/// (factor 1, Coyote's model) low-core simulation is bottlenecked;
/// batching instructions back-to-back accelerates the host at the cost
/// of timing fidelity (simulated cycles shrink artificially).
#[must_use]
pub fn interleave_ablation(scale: Scale) -> Table {
    let n = match scale {
        Scale::Quick => 20,
        Scale::Paper => 48,
    };
    let workload = MatmulScalar::new(n, 2001);
    let mut t = Table::new([
        "cores",
        "interleave",
        "instructions",
        "sim cycles",
        "wall [ms]",
        "MIPS",
    ]);
    for &cores in &[1usize, 2, 4, 8] {
        for &factor in &[1usize, 8, 64] {
            let config = base_builder(cores)
                .interleave(factor)
                .build()
                .expect("valid config");
            let (report, _) = run(&workload, config);
            t.push([
                cores.to_string(),
                factor.to_string(),
                report.total_retired().to_string(),
                report.cycles.to_string(),
                format!("{:.1}", report.wall_time.as_secs_f64() * 1e3),
                format!("{:.3}", report.host_mips()),
            ]);
        }
    }
    t
}

/// Shared vs. tile-private L2 (§III-A: "The L2 can be configured as
/// fully-shared across the system or private to the cores of each
/// tile").
#[must_use]
pub fn l2_sharing(scale: Scale) -> Table {
    let (n, rows) = match scale {
        Scale::Quick => (24, 96),
        Scale::Paper => (64, 1024),
    };
    let matmul = MatmulVector::new(n, 2002);
    let spmv = SpmvVectorCsr::new(rows, rows, 0.05, 2003);
    let workloads: [&dyn Workload; 2] = [&matmul, &spmv];
    let mut t = Table::new([
        "kernel",
        "L2 sharing",
        "sim cycles",
        "L2 miss %",
        "NoC traversals",
        "dep-stall cycles",
    ]);
    for workload in workloads {
        for (sharing, name) in [
            (L2Sharing::Shared, "shared"),
            (L2Sharing::Private, "private"),
        ] {
            let config = base_builder(32)
                .sharing(sharing)
                .build()
                .expect("valid config");
            let (report, _) = run(workload, config);
            t.push([
                workload.name().to_owned(),
                name.to_owned(),
                report.cycles.to_string(),
                format!("{:.2}", report.hierarchy.l2_miss_rate() * 100.0),
                report.hierarchy.noc.traversals.to_string(),
                report.total_dep_stall_cycles().to_string(),
            ]);
        }
    }
    t
}

/// Page-to-bank vs. set-interleaving data mapping: reports runtime and
/// the bank-load imbalance (max/mean accesses over banks) each policy
/// produces.
#[must_use]
pub fn mapping_policy(scale: Scale) -> Table {
    let (n, rows) = match scale {
        Scale::Quick => (24, 96),
        Scale::Paper => (64, 1024),
    };
    let matmul = MatmulVector::new(n, 2004);
    let spmv = SpmvVectorCsr::new(rows, rows, 0.05, 2005);
    let workloads: [&dyn Workload; 2] = [&matmul, &spmv];
    let mut t = Table::new([
        "kernel",
        "mapping",
        "sim cycles",
        "bank imbalance",
        "L2 miss %",
    ]);
    for workload in workloads {
        for policy in [MappingPolicy::page_to_bank(), MappingPolicy::SetInterleave] {
            let config = base_builder(16)
                .mapping(policy)
                .build()
                .expect("valid config");
            let (report, _) = run(workload, config);
            let accesses: Vec<u64> = report
                .hierarchy
                .banks
                .iter()
                .map(coyote_mem::l2::BankStats::accesses)
                .collect();
            let max = accesses.iter().copied().max().unwrap_or(0) as f64;
            let mean = accesses.iter().sum::<u64>() as f64 / accesses.len().max(1) as f64;
            let imbalance = if mean == 0.0 { 0.0 } else { max / mean };
            t.push([
                workload.name().to_owned(),
                policy.name().to_owned(),
                report.cycles.to_string(),
                format!("{imbalance:.2}"),
                format!("{:.2}", report.hierarchy.l2_miss_rate() * 100.0),
            ]);
        }
    }
    t
}

/// L2 geometry sweep: bank capacity × MSHR count (the paper's "size,
/// associativity and line size, the number of banks [...] the maximum
/// number of in-flight misses, and the hit/miss latencies").
#[must_use]
pub fn l2_sweep(scale: Scale) -> Table {
    let n = match scale {
        Scale::Quick => 24,
        Scale::Paper => 128, // 3 matrices x 128 KiB: exceeds the small L2 points
    };
    let workload = MatmulVector::new(n, 2006);
    let mut t = Table::new([
        "bank KiB",
        "MSHRs",
        "sim cycles",
        "L2 miss %",
        "MSHR stalls",
    ]);
    for &size_kib in &[16u64, 64, 256] {
        for &mshrs in &[2usize, 16, 64] {
            let l2 = L2Config {
                bank_size_bytes: size_kib * 1024,
                mshrs,
                ..L2Config::default()
            };
            let config = base_builder(16).l2(l2).build().expect("valid config");
            let (report, _) = run(&workload, config);
            let stalls: u64 = report.hierarchy.banks.iter().map(|b| b.mshr_stalls).sum();
            t.push([
                size_kib.to_string(),
                mshrs.to_string(),
                report.cycles.to_string(),
                format!("{:.2}", report.hierarchy.l2_miss_rate() * 100.0),
                stalls.to_string(),
            ]);
        }
    }
    t
}

/// NoC sweep: the paper's idealized crossbar at several fixed latencies,
/// plus the 2D-mesh extension.
#[must_use]
pub fn noc_sweep(scale: Scale) -> Table {
    let rows = match scale {
        Scale::Quick => 96,
        Scale::Paper => 1024,
    };
    let spmv = SpmvVectorCsr::new(rows, rows, 0.05, 2007);
    let matmul = MatmulVector::new(
        match scale {
            Scale::Quick => 24,
            Scale::Paper => 64,
        },
        2008,
    );
    let workloads: [&dyn Workload; 2] = [&spmv, &matmul];
    let mut t = Table::new(["kernel", "NoC", "sim cycles", "mean NoC latency"]);
    let mut models: Vec<(String, NocModel)> = [1u64, 4, 16, 64]
        .iter()
        .map(|&lat| {
            (
                format!("crossbar({lat})"),
                NocModel::IdealCrossbar {
                    request_latency: lat,
                    response_latency: lat,
                },
            )
        })
        .collect();
    models.push((
        "mesh 4x4(hop 2)".to_owned(),
        NocModel::Mesh {
            width: 4,
            height: 4,
            hop_latency: 2,
            base_latency: 2,
        },
    ));
    for workload in workloads {
        for (name, model) in &models {
            let config = base_builder(32).noc(*model).build().expect("valid config");
            let (report, _) = run(workload, config);
            t.push([
                workload.name().to_owned(),
                name.clone(),
                report.cycles.to_string(),
                format!("{:.1}", report.hierarchy.noc.mean_latency()),
            ]);
        }
    }
    t
}

/// Every kernel of the paper under the default 16-core configuration:
/// the "statistics about memory accesses" summary table.
#[must_use]
pub fn kernel_suite(scale: Scale) -> Table {
    let quick = scale == Scale::Quick;
    let matmul_n = if quick { 20 } else { 48 };
    let spmv_rows = if quick { 96 } else { 512 };
    let ms = MatmulScalar::new(matmul_n, 2009);
    let mv = MatmulVector::new(matmul_n, 2009);
    let ss = SpmvScalar::new(spmv_rows, spmv_rows, 0.05, 2010);
    let sc = SpmvVectorCsr::new(spmv_rows, spmv_rows, 0.05, 2010);
    let se = SpmvVectorEll::new(spmv_rows, spmv_rows, 0.05, 2010);
    let sa = SpmvVectorAdaptive::new(spmv_rows, spmv_rows, 0.05, 2010);
    let st = StencilVector::new(
        if quick { 18 } else { 66 },
        if quick { 18 } else { 66 },
        2,
        2011,
    );
    let ml = MlpInference::new(
        if quick { 24 } else { 256 },
        if quick { 16 } else { 128 },
        if quick { 8 } else { 32 },
        2019,
    );
    let ff = FftRadix2::new(if quick { 64 } else { 1024 }, 2020);
    let tf = ThresholdFilter::new(if quick { 128 } else { 4096 }, 0.2, 2021);
    let workloads: [&dyn Workload; 10] = [&ms, &mv, &ss, &sc, &se, &sa, &st, &ml, &ff, &tf];
    let mut t = Table::new([
        "kernel",
        "instructions",
        "sim cycles",
        "IPC",
        "L1D miss %",
        "L2 miss %",
        "dep stalls",
    ]);
    for workload in workloads {
        let config = base_builder(16).build().expect("valid config");
        let (report, _) = run(workload, config);
        t.push([
            workload.name().to_owned(),
            report.total_retired().to_string(),
            report.cycles.to_string(),
            format!("{:.3}", report.ipc()),
            format!("{:.2}", report.l1d_miss_rate() * 100.0),
            format!("{:.2}", report.hierarchy.l2_miss_rate() * 100.0),
            report
                .cores
                .iter()
                .map(|c| c.stats.dep_stalls)
                .sum::<u64>()
                .to_string(),
        ]);
    }
    t
}

/// Differential-oracle sweep: the whole kernel suite re-runs with the
/// lockstep co-simulation oracle enabled ([`SimConfig::oracle`]). Any
/// timing/functional-separation violation aborts the experiment with
/// the oracle's structured divergence report, so a printed table is
/// itself the assertion that every kernel is oracle-clean.
#[must_use]
pub fn oracle_check(scale: Scale) -> Table {
    let quick = scale == Scale::Quick;
    let matmul_n = if quick { 16 } else { 32 };
    let spmv_rows = if quick { 64 } else { 256 };
    let ms = MatmulScalar::new(matmul_n, 2030);
    let mv = MatmulVector::new(matmul_n, 2030);
    let ss = SpmvScalar::new(spmv_rows, spmv_rows, 0.05, 2031);
    let sc = SpmvVectorCsr::new(spmv_rows, spmv_rows, 0.05, 2031);
    let st = StencilVector::new(
        if quick { 10 } else { 34 },
        if quick { 10 } else { 34 },
        2,
        2032,
    );
    let ml = MlpInference::new(
        if quick { 16 } else { 64 },
        if quick { 8 } else { 32 },
        8,
        2033,
    );
    let ff = FftRadix2::new(if quick { 32 } else { 256 }, 2034);
    let tf = ThresholdFilter::new(if quick { 64 } else { 1024 }, 0.2, 2035);
    let workloads: [&dyn Workload; 8] = [&ms, &mv, &ss, &sc, &st, &ml, &ff, &tf];
    let mut t = Table::new(["kernel", "instructions", "sim cycles", "oracle"]);
    for workload in workloads {
        let config = base_builder(8).oracle(true).build().expect("valid config");
        let (report, _) = run(workload, config);
        t.push([
            workload.name().to_owned(),
            report.total_retired().to_string(),
            report.cycles.to_string(),
            "clean".to_owned(),
        ]);
    }
    t
}

/// Vector vs. scalar data movement: dynamic instruction and L1-access
/// reduction the V extension buys on matmul and SpMV — the paper's
/// motivation for requiring vector support in an HPC simulator.
#[must_use]
pub fn vector_comparison(scale: Scale) -> Table {
    let quick = scale == Scale::Quick;
    let n = if quick { 24 } else { 64 };
    let rows = if quick { 96 } else { 512 };
    let ms = MatmulScalar::new(n, 2012);
    let mv = MatmulVector::new(n, 2012);
    let ss = SpmvScalar::new(rows, rows, 0.05, 2013);
    let sv = SpmvVectorCsr::new(rows, rows, 0.05, 2013);
    let mut t = Table::new([
        "pair",
        "scalar insts",
        "vector insts",
        "inst reduction",
        "scalar cycles",
        "vector cycles",
        "cycle speedup",
    ]);
    let config = base_builder(8).build().expect("valid config");
    for (name, scalar, vector) in [
        ("matmul", &ms as &dyn Workload, &mv as &dyn Workload),
        ("spmv", &ss as &dyn Workload, &sv as &dyn Workload),
    ] {
        let (rs, _) = run(scalar, config);
        let (rv, _) = run(vector, config);
        t.push([
            name.to_owned(),
            rs.total_retired().to_string(),
            rv.total_retired().to_string(),
            format!(
                "{:.1}x",
                rs.total_retired() as f64 / rv.total_retired() as f64
            ),
            rs.cycles.to_string(),
            rv.cycles.to_string(),
            format!("{:.2}x", rs.cycles as f64 / rv.cycles as f64),
        ]);
    }
    t
}

/// L2 next-line prefetch ablation (the paper's named future work:
/// "different data management policies such as prefetching,
/// streaming"). Streaming kernels should gain; the irregular gather
/// kernel measures pollution.
#[must_use]
pub fn prefetch_ablation(scale: Scale) -> Table {
    let quick = scale == Scale::Quick;
    let matmul = MatmulVector::new(if quick { 24 } else { 96 }, 2015);
    let spmv = SpmvVectorCsr::new(
        if quick { 96 } else { 1024 },
        if quick { 96 } else { 1024 },
        0.05,
        2016,
    );
    let workloads: [&dyn Workload; 2] = [&matmul, &spmv];
    let mut t = Table::new([
        "kernel",
        "degree",
        "sim cycles",
        "L2 miss %",
        "prefetch fills",
        "useful %",
    ]);
    for workload in workloads {
        for &degree in &[0usize, 1, 2, 4] {
            let config = base_builder(16)
                .prefetch_degree(degree)
                .build()
                .expect("valid config");
            let (report, _) = run(workload, config);
            let fills: u64 = report
                .hierarchy
                .banks
                .iter()
                .map(|b| b.prefetch_fills)
                .sum();
            let useful: u64 = report
                .hierarchy
                .banks
                .iter()
                .map(|b| b.prefetch_useful)
                .sum();
            let useful_pct = if fills == 0 {
                0.0
            } else {
                100.0 * useful as f64 / fills as f64
            };
            t.push([
                workload.name().to_owned(),
                degree.to_string(),
                report.cycles.to_string(),
                format!("{:.2}", report.hierarchy.l2_miss_rate() * 100.0),
                fills.to_string(),
                format!("{useful_pct:.1}"),
            ]);
        }
    }
    t
}

/// Memory-controller row-buffer ablation (the paper's named future
/// work: "the modelling of the memory controllers"). Compares the flat
/// latency model against an open-page model whose hit/miss latencies
/// bracket it.
#[must_use]
pub fn row_buffer(scale: Scale) -> Table {
    let quick = scale == Scale::Quick;
    let matmul = MatmulVector::new(if quick { 24 } else { 96 }, 2017);
    let spmv = SpmvVectorCsr::new(
        if quick { 96 } else { 1024 },
        if quick { 96 } else { 1024 },
        0.05,
        2018,
    );
    let workloads: [&dyn Workload; 2] = [&matmul, &spmv];
    let mut t = Table::new(["kernel", "MC model", "sim cycles", "row hit %"]);
    for workload in workloads {
        for (name, mc) in [
            ("flat(100)", McConfig::default()),
            (
                "open-page, line-interleave",
                McConfig {
                    row_bytes: 2048,
                    row_hit_latency: 60,
                    row_miss_latency: 160,
                    ..McConfig::default()
                },
            ),
            (
                "open-page, row-interleave",
                McConfig {
                    row_bytes: 2048,
                    row_hit_latency: 60,
                    row_miss_latency: 160,
                    interleave_bytes: 2048,
                    ..McConfig::default()
                },
            ),
        ] {
            let config = base_builder(16).mc(mc).build().expect("valid config");
            let (report, _) = run(workload, config);
            let hits: u64 = report.hierarchy.mcs.iter().map(|m| m.row_hits).sum();
            let misses: u64 = report.hierarchy.mcs.iter().map(|m| m.row_misses).sum();
            let pct = if hits + misses == 0 {
                0.0
            } else {
                100.0 * hits as f64 / (hits + misses) as f64
            };
            t.push([
                workload.name().to_owned(),
                name.to_owned(),
                report.cycles.to_string(),
                format!("{pct:.1}"),
            ]);
        }
    }
    t
}

/// Paraver trace demonstration: runs the stencil with tracing enabled
/// and reports the emitted `.prv` size; when `path` is given the
/// `.prv`/`.pcf` pair is written next to it.
///
/// # Panics
///
/// Panics if the trace files cannot be written.
#[must_use]
pub fn trace_demo(scale: Scale, path: Option<&std::path::Path>) -> Table {
    let g = match scale {
        Scale::Quick => 18,
        Scale::Paper => 66,
    };
    let workload = StencilVector::new(g, g, 2, 2014);
    let config = base_builder(8).trace(true).build().expect("valid config");
    let (report, sim) = run(&workload, config);
    let trace = sim.trace().expect("tracing enabled");
    let mut prv = Vec::new();
    trace.write_prv(&mut prv).expect("in-memory write");
    if let Some(base) = path {
        let prv_path = base.with_extension("prv");
        let pcf_path = base.with_extension("pcf");
        std::fs::write(&prv_path, &prv).expect("write .prv");
        let mut pcf = Vec::new();
        trace.write_pcf(&mut pcf).expect("in-memory write");
        std::fs::write(&pcf_path, &pcf).expect("write .pcf");
    }
    let mut t = Table::new(["kernel", "events", "prv bytes", "sim cycles"]);
    t.push([
        workload.name().to_owned(),
        trace.len().to_string(),
        prv.len().to_string(),
        report.cycles.to_string(),
    ]);
    t
}

/// Telemetry demo: the stencil kernel with the telemetry layer on,
/// exporting the `schema_version`ed metrics JSON, the per-epoch CSV,
/// and a Perfetto-loadable Chrome trace next to `path` (when given).
/// The table shows the request-lifecycle latency percentiles the
/// histograms were built for.
#[must_use]
pub fn telemetry_demo(scale: Scale, path: Option<&std::path::Path>) -> Table {
    let g = match scale {
        Scale::Quick => 18,
        Scale::Paper => 66,
    };
    let workload = StencilVector::new(g, g, 2, 2015);
    let config = base_builder(8)
        .telemetry(true)
        .metrics_interval(1000)
        .chrome_trace(true)
        .build()
        .expect("valid config");
    let (report, sim) = run(&workload, config);

    if let Some(base) = path {
        let doc = coyote::metrics_json(&sim, &report);
        std::fs::write(base.with_extension("json"), doc.to_string_pretty())
            .expect("write metrics .json");
        std::fs::write(base.with_extension("csv"), coyote::metrics_csv(&sim))
            .expect("write metrics .csv");
        let trace = coyote::chrome_trace_json(&sim);
        std::fs::write(base.with_extension("trace.json"), trace.to_string_pretty())
            .expect("write chrome trace");
    }

    let telemetry = sim.mem_telemetry().expect("telemetry enabled");
    let mut t = Table::new(["stage", "requests", "mean [cyc]", "p50", "p95", "p99"]);
    for stage in coyote::Stage::ALL {
        let h = telemetry.stage(stage);
        t.push([
            stage.name().to_owned(),
            h.count().to_string(),
            format!("{:.1}", h.mean()),
            h.quantile(0.50).to_string(),
            h.quantile(0.95).to_string(),
            h.quantile(0.99).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_compresses_simulated_cycles() {
        let t = interleave_ablation(Scale::Quick);
        assert_eq!(t.len(), 12);
        // Structural check only here; the cycle-compression relation is
        // asserted in the simulator's own tests.
    }

    #[test]
    fn l2_sharing_runs_both_modes() {
        let t = l2_sharing(Scale::Quick);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn mapping_policy_reports_imbalance() {
        let t = mapping_policy(Scale::Quick);
        assert_eq!(t.len(), 4);
        assert!(t.render().contains("page-to-bank"));
        assert!(t.render().contains("set-interleave"));
    }

    #[test]
    fn l2_sweep_covers_grid() {
        let t = l2_sweep(Scale::Quick);
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn noc_sweep_latency_monotone() {
        let t = noc_sweep(Scale::Quick);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn kernel_suite_runs_all_kernels() {
        let t = kernel_suite(Scale::Quick);
        assert_eq!(t.len(), 10);
        assert!(t.render().contains("mlp-inference"));
        assert!(t.render().contains("fft-radix2"));
        assert!(t.render().contains("threshold-filter"));
    }

    #[test]
    fn vector_comparison_shows_reduction() {
        let t = vector_comparison(Scale::Quick);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn prefetch_ablation_covers_degrees() {
        let t = prefetch_ablation(Scale::Quick);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn row_buffer_covers_models() {
        let t = row_buffer(Scale::Quick);
        assert_eq!(t.len(), 6);
        assert!(t.render().contains("open-page"));
    }

    #[test]
    fn trace_demo_emits_events() {
        let t = trace_demo(Scale::Quick, None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn telemetry_demo_reports_every_stage() {
        let t = telemetry_demo(Scale::Quick, None);
        assert_eq!(t.len(), coyote::Stage::ALL.len());
    }
}
