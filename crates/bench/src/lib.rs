//! Benchmark and reproduction harness for the Coyote paper's
//! evaluation.
//!
//! The library half holds the experiment implementations (shared by the
//! `repro` binary and the Criterion benches); see [`fig3`] for the
//! paper's figure and [`experiments`] for the remaining evaluation
//! axes. Experiment ids match the DESIGN.md per-experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fig3;
pub mod table;

/// Problem-size preset for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for tests and smoke runs (seconds).
    Quick,
    /// Paper-scale inputs for EXPERIMENTS.md (minutes).
    Paper,
}

pub use table::Table;
