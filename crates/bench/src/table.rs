//! Minimal fixed-width table printing for the reproduction harness.

/// A printable table: header plus rows of equally many cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', widths[i] - cell.len()));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        emit(&mut out, &rule);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(["cores", "mips"]);
        t.push(["1", "0.52"]);
        t.push(["128", "6.01"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "cores  mips");
        assert_eq!(lines[1], "-----  ----");
        assert_eq!(lines[2], "1      0.52");
        assert_eq!(lines[3], "128    6.01");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }
}
