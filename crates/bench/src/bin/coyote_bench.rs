//! `coyote-bench`: machine-readable benchmark runner for the paper's
//! throughput figure.
//!
//! ```text
//! coyote-bench fig3 [options]
//!
//!   --quick              quick-scale problem sizes and core counts
//!   --weak               weak-scaling sweep (problem grows with cores)
//!   --cores A,B,C        restrict the sweep to these core counts
//!   --kernel matmul|spmv run only one kernel (default both)
//!   --jobs N             host worker threads stepping the cores
//!   --json FILE          write the sweep as JSON rows + a host block
//!   --baseline FILE      compare MIPS against a committed JSON baseline
//!   --max-regress PCT    allowed MIPS regression vs baseline (default 20)
//!   --strict             exit non-zero on regression (default warn-only)
//! ```
//!
//! The JSON schema is `{schema, experiment, scale, jobs, host, rows,
//! host_profile}` with one row per measured point:
//! `{cores, kernel, instructions, cycles, wall_ns, mips,
//! block_hit_rate}`. The `host`
//! block records the machine the numbers came from so a baseline diff
//! across runners is interpreted, not blindly trusted — hence the
//! warn-only default. `host_profile` is one *extra* wall-profiled run
//! at the sweep's largest core count — per-phase share of host time,
//! fused-chunk p50/p99, abort-reason counts — kept out of the measured
//! rows so profiling overhead never touches the MIPS numbers.

use std::process::ExitCode;

use coyote::{parse_json, JsonValue};
use coyote_bench::fig3::{self, Fig3Row};
use coyote_bench::Scale;
use coyote_kernels::workload::Workload;

#[derive(Clone, Copy, PartialEq, Eq)]
enum KernelChoice {
    Matmul,
    Spmv,
    Both,
}

struct Options {
    scale: Scale,
    weak: bool,
    cores: Option<Vec<usize>>,
    kernel: KernelChoice,
    jobs: usize,
    json_path: Option<String>,
    baseline_path: Option<String>,
    max_regress_pct: f64,
    strict: bool,
}

fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("fig3") => {}
        Some("--help" | "-h") | None => {
            print_help();
            std::process::exit(0);
        }
        Some(other) => return Err(format!("unknown experiment `{other}` (try fig3)")),
    }

    let mut options = Options {
        scale: Scale::Paper,
        weak: false,
        cores: None,
        kernel: KernelChoice::Both,
        jobs: 1,
        json_path: None,
        baseline_path: None,
        max_regress_pct: 20.0,
        strict: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.scale = Scale::Quick,
            "--weak" => options.weak = true,
            "--cores" => {
                let list = value(&mut args, "--cores")?;
                let cores: Result<Vec<usize>, _> =
                    list.split(',').map(str::trim).map(str::parse).collect();
                options.cores = Some(cores.map_err(|e| format!("--cores: {e}"))?);
            }
            "--kernel" => {
                options.kernel = match value(&mut args, "--kernel")?.as_str() {
                    "matmul" => KernelChoice::Matmul,
                    "spmv" => KernelChoice::Spmv,
                    "both" => KernelChoice::Both,
                    other => return Err(format!("unknown kernel `{other}` (matmul|spmv|both)")),
                };
            }
            "--jobs" => {
                options.jobs = value(&mut args, "--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if options.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--json" => options.json_path = Some(value(&mut args, "--json")?),
            "--baseline" => options.baseline_path = Some(value(&mut args, "--baseline")?),
            "--max-regress" => {
                options.max_regress_pct = value(&mut args, "--max-regress")?
                    .parse()
                    .map_err(|e| format!("--max-regress: {e}"))?;
            }
            "--strict" => options.strict = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn print_help() {
    println!("usage: coyote-bench fig3 [options]");
    println!("  --quick              quick-scale problem sizes and core counts");
    println!("  --weak               weak-scaling sweep (problem grows with cores)");
    println!("  --cores A,B,C        restrict the sweep to these core counts");
    println!("  --kernel matmul|spmv run only one kernel (default both)");
    println!("  --jobs N             host worker threads stepping the cores");
    println!("  --json FILE          write the sweep as JSON rows + a host block");
    println!("  --baseline FILE      compare MIPS against a committed JSON baseline");
    println!("  --max-regress PCT    allowed MIPS regression vs baseline (default 20)");
    println!("  --strict             exit non-zero on regression (default warn-only)");
}

fn sweep(options: &Options) -> Vec<Fig3Row> {
    let counts: Vec<usize> = match &options.cores {
        Some(list) => list.clone(),
        None => fig3::core_counts(options.scale),
    };
    let mut rows = Vec::new();
    for &cores in &counts {
        let (matmul, spmv);
        let mut kernels: Vec<&dyn Workload> = Vec::new();
        if options.weak {
            let (rows_per_core, n, spmv_rows_per_core, spmv_cols) = match options.scale {
                Scale::Quick => (2usize, 24usize, 16usize, 128usize),
                Scale::Paper => (2, 96, 32, 1024),
            };
            matmul = coyote_kernels::MatmulScalar::with_rows(rows_per_core * cores, n, 1003);
            spmv =
                coyote_kernels::SpmvScalar::new(spmv_rows_per_core * cores, spmv_cols, 0.04, 1004);
        } else {
            matmul = fig3::matmul_for(options.scale);
            spmv = fig3::spmv_for(options.scale);
        }
        if options.kernel != KernelChoice::Spmv {
            kernels.push(&matmul);
        }
        if options.kernel != KernelChoice::Matmul {
            kernels.push(&spmv);
        }
        for kernel in kernels {
            let row = fig3::measure(kernel, cores, options.jobs);
            eprintln!(
                "fig3: cores={:3} kernel={:6} instructions={:>12} cycles={:>12} wall={:8.1}ms mips={:.3} block_hit={:.3}",
                row.cores,
                row.kernel,
                row.instructions,
                row.cycles,
                row.wall.as_secs_f64() * 1e3,
                row.mips,
                row.block_hit_rate
            );
            rows.push(row);
        }
    }
    rows
}

fn scale_name(options: &Options) -> &'static str {
    match (options.scale, options.weak) {
        (Scale::Quick, false) => "quick",
        (Scale::Quick, true) => "quick-weak",
        (Scale::Paper, false) => "paper",
        (Scale::Paper, true) => "paper-weak",
    }
}

fn host_block() -> JsonValue {
    let threads = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    JsonValue::object()
        .with("threads", threads)
        .with("os", std::env::consts::OS)
        .with("arch", std::env::consts::ARCH)
        .with(
            "opt",
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        )
}

/// The host-profile summary attached to the JSON export: one extra
/// wall-profiled run of the sweep's first selected kernel at its
/// largest core count. Separate from `sweep()` so the measured MIPS
/// rows never carry profiling overhead.
fn profile_block(options: &Options, rows: &[Fig3Row]) -> JsonValue {
    let Some(cores) = rows.iter().map(|r| r.cores).max() else {
        return JsonValue::Null;
    };
    if options.kernel == KernelChoice::Spmv {
        let spmv = fig3::spmv_for(options.scale);
        fig3::profile_summary(&spmv, cores)
    } else {
        let matmul = fig3::matmul_for(options.scale);
        fig3::profile_summary(&matmul, cores)
    }
}

fn rows_json(options: &Options, rows: &[Fig3Row], host_profile: JsonValue) -> JsonValue {
    let row_values: Vec<JsonValue> = rows
        .iter()
        .map(|row| {
            JsonValue::object()
                .with("cores", row.cores)
                .with("kernel", row.kernel)
                .with("instructions", row.instructions)
                .with("cycles", row.cycles)
                .with(
                    "wall_ns",
                    u64::try_from(row.wall.as_nanos()).unwrap_or(u64::MAX),
                )
                .with("mips", row.mips)
                .with("block_hit_rate", row.block_hit_rate)
        })
        .collect();
    JsonValue::object()
        .with("schema", 2u64)
        .with("experiment", "fig3")
        .with("scale", scale_name(options))
        .with("jobs", options.jobs)
        .with("host", host_block())
        .with("rows", row_values)
        .with("host_profile", host_profile)
}

/// Compares measured MIPS against a committed baseline; returns the
/// points that regressed more than the allowed percentage.
fn regressions(baseline: &JsonValue, rows: &[Fig3Row], max_regress_pct: f64) -> Vec<String> {
    let mut out = Vec::new();
    let Some(base_rows) = baseline.get("rows").and_then(JsonValue::as_array) else {
        return vec!["baseline has no `rows` array".to_owned()];
    };
    for row in rows {
        let base = base_rows.iter().find(|b| {
            b.get("cores").and_then(JsonValue::as_u64) == Some(row.cores as u64)
                && b.get("kernel").and_then(JsonValue::as_str) == Some(row.kernel)
        });
        let Some(base_mips) = base.and_then(|b| b.get("mips")).and_then(JsonValue::as_f64) else {
            continue; // point not in baseline: nothing to diff
        };
        if base_mips <= 0.0 {
            continue;
        }
        let regress_pct = (base_mips - row.mips) / base_mips * 100.0;
        if regress_pct > max_regress_pct {
            out.push(format!(
                "cores={} kernel={}: {:.3} MIPS vs baseline {:.3} ({:.1}% regression > {:.0}% allowed)",
                row.cores, row.kernel, row.mips, base_mips, regress_pct, max_regress_pct
            ));
        }
    }
    out
}

fn run(options: &Options) -> Result<ExitCode, String> {
    let rows = sweep(options);
    println!("{}", fig3::table(&rows));

    if let Some(path) = &options.json_path {
        eprintln!("fig3: profiling one extra run for the host_profile block");
        let json = rows_json(options, &rows, profile_block(options, &rows));
        std::fs::write(path, format!("{}\n", json.to_string_pretty()))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("fig3: wrote {path}");
    }

    if let Some(path) = &options.baseline_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let baseline = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let bad = regressions(&baseline, &rows, options.max_regress_pct);
        if bad.is_empty() {
            eprintln!(
                "fig3: no point regressed more than {:.0}% vs {path}",
                options.max_regress_pct
            );
        } else {
            for line in &bad {
                eprintln!("fig3: WARNING: {line}");
            }
            if options.strict {
                return Err(format!(
                    "{} point(s) regressed more than {:.0}% vs {path}",
                    bad.len(),
                    options.max_regress_pct
                ));
            }
            eprintln!("fig3: regression is warn-only without --strict (shared-runner noise)");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(options) => match run(&options) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("coyote-bench: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("coyote-bench: {message}");
            ExitCode::FAILURE
        }
    }
}
