//! The reproduction driver: regenerates every table and figure series
//! recorded in EXPERIMENTS.md.
//!
//! ```text
//! repro [--quick] <experiment>...
//! repro [--quick] all
//! ```
//!
//! Experiments: `fig3`, `interleave`, `l2share`, `mapping`, `l2sweep`,
//! `noc`, `kernels`, `oracle`, `vector`, `trace`, `telemetry`.

use std::process::ExitCode;

use coyote_bench::{experiments, fig3, Scale};

fn print_experiment(name: &str, scale: Scale) -> bool {
    println!("== {name} ({scale:?}) ==");
    let table = match name {
        "fig3" => fig3::table(&fig3::run(scale)),
        "fig3weak" => fig3::table(&fig3::run_weak(scale)),
        "interleave" => experiments::interleave_ablation(scale),
        "l2share" => experiments::l2_sharing(scale),
        "mapping" => experiments::mapping_policy(scale),
        "l2sweep" => experiments::l2_sweep(scale),
        "noc" => experiments::noc_sweep(scale),
        "kernels" => experiments::kernel_suite(scale),
        "oracle" => experiments::oracle_check(scale),
        "vector" => experiments::vector_comparison(scale),
        "prefetch" => experiments::prefetch_ablation(scale),
        "rowbuffer" => experiments::row_buffer(scale),
        "trace" => {
            let path = std::path::Path::new("target/stencil_trace");
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let t = experiments::trace_demo(scale, Some(path));
            println!("trace written to target/stencil_trace.prv (+ .pcf)");
            t
        }
        "telemetry" => {
            let path = std::path::Path::new("target/stencil_metrics");
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let t = experiments::telemetry_demo(scale, Some(path));
            println!("metrics written to target/stencil_metrics.json (+ .csv, .trace.json)");
            t
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            return false;
        }
    };
    println!("{table}");
    true
}

const ALL: [&str; 14] = [
    "fig3",
    "fig3weak",
    "interleave",
    "l2share",
    "mapping",
    "l2sweep",
    "noc",
    "kernels",
    "oracle",
    "vector",
    "prefetch",
    "rowbuffer",
    "trace",
    "telemetry",
];

fn main() -> ExitCode {
    let mut scale = Scale::Paper;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--help" | "-h" => {
                println!("usage: repro [--quick] <experiment>... | all");
                println!("experiments: {}", ALL.join(", "));
                return ExitCode::SUCCESS;
            }
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: repro [--quick] <experiment>... | all");
        eprintln!("experiments: {}", ALL.join(", "));
        return ExitCode::FAILURE;
    }
    if names.iter().any(|n| n == "all") {
        names = ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    let mut ok = true;
    for name in &names {
        ok &= print_experiment(name, scale);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
