//! Figure 3 reproduction: aggregate simulation throughput (MIPS) as the
//! simulated core count grows, for scalar matmul and scalar SpMV.
//!
//! The paper reports the throughput rising from a 1-core bottleneck
//! (interleaving disabled in Spike) to ~6 MIPS at 128 cores. Absolute
//! numbers depend on the host; the reproduced *shape* — aggregate MIPS
//! growing with core count, matmul and SpMV tracking each other — is
//! what EXPERIMENTS.md records.

use std::time::Duration;

use coyote::{JsonValue, ProfMode, SimConfig};
use coyote_kernels::workload::{run_workload, Workload};
use coyote_kernels::{MatmulScalar, SpmvScalar};

use crate::table::Table;
use crate::Scale;

/// One measured point of the Figure 3 sweep.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Simulated core count.
    pub cores: usize,
    /// Kernel name.
    pub kernel: &'static str,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Host wall-clock time.
    pub wall: Duration,
    /// Aggregate simulation throughput in MIPS.
    pub mips: f64,
    /// Fraction of retirements that took the superblock fused path.
    pub block_hit_rate: f64,
}

/// The core counts the paper sweeps (quick mode trims the tail).
#[must_use]
pub fn core_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 2, 4, 8],
        Scale::Paper => vec![1, 2, 4, 8, 16, 32, 64, 128],
    }
}

/// The scalar matmul kernel at the scale's problem size.
#[must_use]
pub fn matmul_for(scale: Scale) -> MatmulScalar {
    match scale {
        Scale::Quick => MatmulScalar::new(24, 1001),
        Scale::Paper => MatmulScalar::new(96, 1001),
    }
}

/// The scalar SpMV kernel at the scale's problem size.
#[must_use]
pub fn spmv_for(scale: Scale) -> SpmvScalar {
    match scale {
        Scale::Quick => SpmvScalar::new(128, 128, 0.06, 1002),
        Scale::Paper => SpmvScalar::new(2048, 2048, 0.02, 1002),
    }
}

/// Measures one point of the sweep: `workload` on `cores` simulated
/// cores with `jobs` host worker threads stepping the cores.
#[must_use]
pub fn measure(workload: &dyn Workload, cores: usize, jobs: usize) -> Fig3Row {
    let config = SimConfig::builder()
        .cores(cores)
        .cores_per_tile(8)
        .jobs(jobs)
        .build()
        .expect("valid config");
    let (report, _) = run_workload(workload, config).expect("workload runs and verifies");
    Fig3Row {
        cores,
        kernel: if workload.name().starts_with("matmul") {
            "Matmul"
        } else {
            "SpMV"
        },
        instructions: report.total_retired(),
        cycles: report.cycles,
        wall: report.wall_time,
        mips: report.host_mips(),
        block_hit_rate: report.block_hit_rate(),
    }
}

/// One extra wall-profiled run of `workload` at `cores`, kept separate
/// from the measured sweep rows so profiling overhead never pollutes
/// the MIPS numbers. Returns the summary block the JSON export embeds:
/// per-phase share of profiled wall time, fused-chunk-length p50/p99,
/// and the window-abort reason counts.
#[must_use]
pub fn profile_summary(workload: &dyn Workload, cores: usize) -> JsonValue {
    let config = SimConfig::builder()
        .cores(cores)
        .cores_per_tile(8)
        .profiling(ProfMode::Wall)
        .build()
        .expect("valid config");
    let (_, sim) = run_workload(workload, config).expect("workload runs and verifies");
    let profile = coyote::host_profile_json(&sim);
    let phases = profile.get("phases").and_then(JsonValue::as_array);
    let total: u64 = phases.map_or(0, |list| {
        list.iter()
            .filter_map(|p| p.get("total_ns").and_then(JsonValue::as_u64))
            .sum()
    });
    let mut share = JsonValue::object();
    if let Some(list) = phases {
        for phase in list {
            let name = phase.get("name").and_then(JsonValue::as_str).unwrap_or("?");
            let ns = phase
                .get("total_ns")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            let frac = if total == 0 {
                0.0
            } else {
                ns as f64 / total as f64
            };
            share = share.with(name, frac);
        }
    }
    let chunk_quantile = |key: &str| {
        profile
            .get("chunk_lengths")
            .and_then(|h| h.get(key))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    JsonValue::object()
        .with("kernel", workload.name())
        .with("cores", cores)
        .with("profiled_wall_ns", total)
        .with("phase_share", share)
        .with("chunk_len_p50", chunk_quantile("p50"))
        .with("chunk_len_p99", chunk_quantile("p99"))
        .with(
            "abort_reasons",
            profile
                .get("abort_reasons")
                .cloned()
                .unwrap_or(JsonValue::Null),
        )
}

/// Runs the sweep for both kernels across the scale's core counts
/// (fixed problem: strong scaling of the simulated application).
#[must_use]
pub fn run(scale: Scale) -> Vec<Fig3Row> {
    let matmul = matmul_for(scale);
    let spmv = spmv_for(scale);
    let mut rows = Vec::new();
    for &cores in &core_counts(scale) {
        rows.push(measure(&matmul, cores, 1));
        rows.push(measure(&spmv, cores, 1));
    }
    rows
}

/// Weak-scaling variant: the problem grows with the core count so every
/// core always has the same work — isolating how per-core simulated
/// state affects the host throughput as the system scales.
#[must_use]
pub fn run_weak(scale: Scale) -> Vec<Fig3Row> {
    let (rows_per_core, n, spmv_rows_per_core, spmv_cols) = match scale {
        Scale::Quick => (2usize, 24usize, 16usize, 128usize),
        Scale::Paper => (2, 96, 32, 1024),
    };
    let mut rows = Vec::new();
    for &cores in &core_counts(scale) {
        let matmul = coyote_kernels::MatmulScalar::with_rows(rows_per_core * cores, n, 1003);
        let spmv = SpmvScalar::new(spmv_rows_per_core * cores, spmv_cols, 0.04, 1004);
        rows.push(measure(&matmul, cores, 1));
        rows.push(measure(&spmv, cores, 1));
    }
    rows
}

/// Renders the sweep as the paper's figure series (one MIPS column per
/// kernel).
#[must_use]
pub fn table(rows: &[Fig3Row]) -> Table {
    let mut t = Table::new([
        "cores",
        "kernel",
        "instructions",
        "sim cycles",
        "wall [ms]",
        "MIPS",
        "block hit",
    ]);
    for row in rows {
        t.push([
            row.cores.to_string(),
            row.kernel.to_owned(),
            row.instructions.to_string(),
            row.cycles.to_string(),
            format!("{:.1}", row.wall.as_secs_f64() * 1e3),
            format!("{:.3}", row.mips),
            format!("{:.3}", row.block_hit_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_all_points() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), core_counts(Scale::Quick).len() * 2);
        for row in &rows {
            assert!(row.instructions > 0);
            assert!(row.cycles > 0);
        }
        let t = table(&rows);
        assert_eq!(t.len(), rows.len());
    }

    #[test]
    fn weak_scaling_grows_work_with_cores() {
        let rows = run_weak(Scale::Quick);
        let matmul: Vec<&Fig3Row> = rows.iter().filter(|r| r.kernel == "Matmul").collect();
        assert!(
            matmul.last().unwrap().instructions > 2 * matmul[0].instructions,
            "weak scaling must grow total work"
        );
    }

    #[test]
    fn same_kernel_same_total_work() {
        // The simulated problem is fixed, so total instructions stay in
        // the same ballpark as cores grow (start-up code is per hart).
        let rows = run(Scale::Quick);
        let matmul: Vec<&Fig3Row> = rows.iter().filter(|r| r.kernel == "Matmul").collect();
        let base = matmul[0].instructions as f64;
        for row in &matmul {
            let ratio = row.instructions as f64 / base;
            assert!(
                (0.8..1.6).contains(&ratio),
                "instructions drifted: {} vs {}",
                row.instructions,
                base
            );
        }
    }

    #[test]
    fn profile_summary_reports_shares_and_distributions() {
        let matmul = matmul_for(Scale::Quick);
        let summary = profile_summary(&matmul, 4);
        let share = summary.get("phase_share").expect("phase_share block");
        let execute = share
            .get("execute")
            .and_then(JsonValue::as_f64)
            .expect("execute share");
        assert!(
            (0.0..=1.0).contains(&execute),
            "share must be a fraction: {execute}"
        );
        let p50 = summary
            .get("chunk_len_p50")
            .and_then(JsonValue::as_u64)
            .unwrap();
        let p99 = summary
            .get("chunk_len_p99")
            .and_then(JsonValue::as_u64)
            .unwrap();
        assert!(p50 <= p99, "quantiles unordered: p50 {p50} p99 {p99}");
        let aborts = summary.get("abort_reasons").expect("abort reasons");
        assert!(aborts.get("scoreboard_busy").is_some());
    }

    #[test]
    fn more_cores_fewer_cycles() {
        // Strong scaling of the *simulated* application.
        let rows = run(Scale::Quick);
        let matmul: Vec<&Fig3Row> = rows.iter().filter(|r| r.kernel == "Matmul").collect();
        assert!(
            matmul.last().unwrap().cycles < matmul[0].cycles,
            "parallel run should take fewer simulated cycles"
        );
    }
}
