//! Telemetry overhead A/B bench: the same kernel simulated with the
//! telemetry layer disabled (the default) and enabled (histograms +
//! epoch time series). Disabled must sit in the noise of the baseline;
//! enabled is documented to cost under 15% (DESIGN.md, "Telemetry").
//! Chrome slice capture is benched separately since it retains
//! per-request data.

use coyote::SimConfig;
use coyote_kernels::workload::run_workload;
use coyote_kernels::MatmulScalar;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(2000));
    let workload = MatmulScalar::new(24, 2016);

    let disabled = SimConfig::builder()
        .cores(8)
        .cores_per_tile(8)
        .build()
        .expect("valid config");
    group.bench_function("disabled", |b| {
        b.iter(|| run_workload(&workload, disabled).expect("runs"));
    });

    let enabled = SimConfig::builder()
        .cores(8)
        .cores_per_tile(8)
        .telemetry(true)
        .metrics_interval(1000)
        .build()
        .expect("valid config");
    group.bench_function("enabled", |b| {
        b.iter(|| run_workload(&workload, enabled).expect("runs"));
    });

    let chrome = SimConfig::builder()
        .cores(8)
        .cores_per_tile(8)
        .telemetry(true)
        .metrics_interval(1000)
        .chrome_trace(true)
        .build()
        .expect("valid config");
    group.bench_function("enabled_with_chrome_slices", |b| {
        b.iter(|| run_workload(&workload, chrome).expect("runs"));
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
