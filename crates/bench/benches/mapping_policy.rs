//! Mapping-policy bench: page-to-bank vs. set-interleaving host cost
//! (the bank-imbalance table comes from `repro mapping`).

use coyote::{MappingPolicy, SimConfig};
use coyote_kernels::workload::run_workload;
use coyote_kernels::MatmulVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_policy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let workload = MatmulVector::new(24, 2004);
    for policy in [MappingPolicy::page_to_bank(), MappingPolicy::SetInterleave] {
        group.bench_with_input(
            BenchmarkId::new("matmul", policy.name()),
            &policy,
            |b, &policy| {
                let config = SimConfig::builder()
                    .cores(16)
                    .cores_per_tile(8)
                    .mapping(policy)
                    .build()
                    .expect("valid config");
                b.iter(|| run_workload(&workload, config).expect("runs"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
