//! L2-geometry bench: host cost across bank-capacity and MSHR settings
//! (the miss-rate/stall table comes from `repro l2sweep`).

use coyote::{L2Config, SimConfig};
use coyote_kernels::workload::run_workload;
use coyote_kernels::MatmulVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let workload = MatmulVector::new(24, 2006);
    for size_kib in [64u64, 256, 1024] {
        for mshrs in [2usize, 64] {
            let l2 = L2Config {
                bank_size_bytes: size_kib * 1024,
                mshrs,
                ..L2Config::default()
            };
            let id = format!("{size_kib}KiB/{mshrs}mshr");
            group.bench_with_input(BenchmarkId::new("matmul", id), &l2, |b, &l2| {
                let config = SimConfig::builder()
                    .cores(16)
                    .cores_per_tile(8)
                    .l2(l2)
                    .build()
                    .expect("valid config");
                b.iter(|| run_workload(&workload, config).expect("runs"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_l2);
criterion_main!(benches);
