//! Memory-controller row-buffer bench: flat vs. open-page MC models
//! (the row-hit table comes from `repro rowbuffer`).

use coyote::{McConfig, SimConfig};
use coyote_kernels::workload::run_workload;
use coyote_kernels::MatmulVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_row_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_buffer");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let workload = MatmulVector::new(24, 2017);
    let models = [
        ("flat", McConfig::default()),
        (
            "open_page_row_interleave",
            McConfig {
                row_bytes: 2048,
                row_hit_latency: 60,
                row_miss_latency: 160,
                interleave_bytes: 2048,
                ..McConfig::default()
            },
        ),
    ];
    for (name, mc) in models {
        group.bench_with_input(BenchmarkId::new("matmul", name), &mc, |b, &mc| {
            let config = SimConfig::builder()
                .cores(16)
                .cores_per_tile(8)
                .mc(mc)
                .build()
                .expect("valid config");
            b.iter(|| run_workload(&workload, config).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_row_buffer);
criterion_main!(benches);
