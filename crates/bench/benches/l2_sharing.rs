//! L2-sharing bench: simulation cost under shared vs. tile-private L2
//! (the timing-result table comes from `repro l2share`).

use coyote::{L2Sharing, SimConfig};
use coyote_kernels::workload::run_workload;
use coyote_kernels::SpmvVectorCsr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_sharing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let workload = SpmvVectorCsr::new(96, 96, 0.05, 2003);
    for (name, sharing) in [
        ("shared", L2Sharing::Shared),
        ("private", L2Sharing::Private),
    ] {
        group.bench_with_input(BenchmarkId::new("spmv", name), &sharing, |b, &sharing| {
            let config = SimConfig::builder()
                .cores(16)
                .cores_per_tile(8)
                .sharing(sharing)
                .build()
                .expect("valid config");
            b.iter(|| run_workload(&workload, config).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharing);
criterion_main!(benches);
