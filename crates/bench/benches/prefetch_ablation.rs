//! Prefetch-degree bench: host cost of the simulation at increasing L2
//! next-line prefetch degrees (the simulated-cycle/usefulness table
//! comes from `repro prefetch`).

use coyote::SimConfig;
use coyote_kernels::workload::run_workload;
use coyote_kernels::MatmulVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_prefetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetch_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let workload = MatmulVector::new(24, 2015);
    for degree in [0usize, 1, 2, 4] {
        group.bench_with_input(BenchmarkId::new("matmul", degree), &degree, |b, &degree| {
            let config = SimConfig::builder()
                .cores(16)
                .cores_per_tile(8)
                .prefetch_degree(degree)
                .build()
                .expect("valid config");
            b.iter(|| run_workload(&workload, config).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prefetch);
criterion_main!(benches);
