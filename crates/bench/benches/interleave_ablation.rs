//! Interleaving ablation bench: host cost of the same simulation with
//! Spike-style instruction batching re-enabled (factor > 1). The paper
//! attributes its low-core Figure 3 bottleneck to running with the
//! equivalent of factor 1.

use coyote::SimConfig;
use coyote_kernels::workload::run_workload;
use coyote_kernels::MatmulScalar;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_interleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("interleave_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let workload = MatmulScalar::new(20, 2001);
    for factor in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("1core", factor), &factor, |b, &factor| {
            let config = SimConfig::builder()
                .cores(1)
                .interleave(factor)
                .build()
                .expect("valid config");
            b.iter(|| run_workload(&workload, config).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interleave);
criterion_main!(benches);
