//! Figure 3 bench: wall-clock cost of simulating scalar matmul and
//! scalar SpMV as the simulated core count grows. Criterion's mean
//! time per iteration divided into the (fixed) retired-instruction
//! count gives the paper's aggregate-MIPS series; `repro fig3` prints
//! it directly.

use coyote::SimConfig;
use coyote_kernels::workload::run_workload;
use coyote_kernels::{MatmulScalar, SpmvScalar};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn config(cores: usize) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .cores_per_tile(8)
        .build()
        .expect("valid config")
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let matmul = MatmulScalar::new(24, 1001);
    let spmv = SpmvScalar::new(128, 128, 0.06, 1002);
    for cores in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("matmul", cores), &cores, |b, &cores| {
            b.iter(|| run_workload(&matmul, config(cores)).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("spmv", cores), &cores, |b, &cores| {
            b.iter(|| run_workload(&spmv, config(cores)).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
