//! Kernel-suite bench: host cost of simulating each of the paper's six
//! kernels under the default configuration (the statistics table comes
//! from `repro kernels`).

use coyote::SimConfig;
use coyote_kernels::workload::{run_workload, Workload};
use coyote_kernels::{
    MatmulScalar, MatmulVector, SpmvScalar, SpmvVectorAdaptive, SpmvVectorCsr, SpmvVectorEll,
    StencilVector,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_suite");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let ms = MatmulScalar::new(16, 2009);
    let mv = MatmulVector::new(16, 2009);
    let ss = SpmvScalar::new(64, 64, 0.05, 2010);
    let sc = SpmvVectorCsr::new(64, 64, 0.05, 2010);
    let se = SpmvVectorEll::new(64, 64, 0.05, 2010);
    let sa = SpmvVectorAdaptive::new(64, 64, 0.05, 2010);
    let st = StencilVector::new(18, 18, 2, 2011);
    let workloads: [&dyn Workload; 7] = [&ms, &mv, &ss, &sc, &se, &sa, &st];
    let config = SimConfig::builder()
        .cores(8)
        .cores_per_tile(8)
        .build()
        .expect("valid config");
    for workload in workloads {
        group.bench_function(workload.name(), |b| {
            b.iter(|| run_workload(workload, config).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
