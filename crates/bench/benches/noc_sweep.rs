//! NoC bench: crossbar latencies and the mesh extension (the
//! simulated-cycle table comes from `repro noc`).

use coyote::{NocModel, SimConfig};
use coyote_kernels::workload::run_workload;
use coyote_kernels::SpmvVectorCsr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_noc(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let workload = SpmvVectorCsr::new(96, 96, 0.05, 2007);
    let mut models: Vec<(String, NocModel)> = [1u64, 16, 64]
        .iter()
        .map(|&lat| {
            (
                format!("crossbar{lat}"),
                NocModel::IdealCrossbar {
                    request_latency: lat,
                    response_latency: lat,
                },
            )
        })
        .collect();
    models.push((
        "mesh4x4".to_owned(),
        NocModel::Mesh {
            width: 4,
            height: 4,
            hop_latency: 2,
            base_latency: 2,
        },
    ));
    for (name, model) in models {
        group.bench_with_input(BenchmarkId::new("spmv", &name), &model, |b, &model| {
            let config = SimConfig::builder()
                .cores(16)
                .cores_per_tile(8)
                .noc(model)
                .build()
                .expect("valid config");
            b.iter(|| run_workload(&workload, config).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);
