//! Telemetry primitives for the Coyote reproduction.
//!
//! The paper positions Coyote as a data-movement analysis tool: the
//! numbers it emits about cache banks, the NoC, and memory are the
//! product. This crate supplies the observability building blocks the
//! simulator threads through its stack:
//!
//! - [`Histogram`] — log2-bucketed latency histograms for
//!   request-lifecycle stages (NoC, bank, MSHR wait, DRAM, delivery);
//! - [`TimeSeries`] / [`Sample`] — epoch-sampled delta counters with
//!   bounded-memory pair-merge compaction, serializing to CSV;
//! - [`JsonValue`] — a hand-rolled, dependency-free JSON writer and
//!   parser used for the stable `schema_version`ed metrics document;
//! - [`ChromeTrace`] — Chrome trace-event JSON (Perfetto-loadable) for
//!   request lifecycles and core-state intervals;
//! - [`TelemetrySink`] — the epoch bookkeeping the simulation loop
//!   drives, deliberately typed on plain numbers so this crate stays a
//!   leaf dependency;
//! - [`HostProf`] — the host-side self-profiler: phase timers and
//!   counters for the simulator's *own* hot path;
//! - [`StatusEmitter`] — the live plane: periodic JSON-lines status
//!   snapshots replaced atomically for out-of-band watchers
//!   (`coyote-top`).
//!
//! Everything that describes the simulated machine is deterministic:
//! no hashing with random seeds, so identical simulations produce
//! byte-identical exports. Wall-clock reads exist in exactly two
//! places — [`hostprof`] and [`live`], path-pinned by the `wall-clock`
//! lint — and measure the host without ever feeding time back into
//! the model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod hostprof;
pub mod json;
pub mod live;
pub mod series;
pub mod topk;

pub use chrome::{ChromeEvent, ChromeTrace, FlowEvent};
pub use hist::{Histogram, BUCKETS};
pub use hostprof::{HostProf, ProfClock, SpanToken, WallClock};
pub use json::{parse as parse_json, JsonParseError, JsonValue};
pub use live::{CoreStatus, StatusEmitter, StatusSnapshot};
pub use series::{Sample, TimeSeries};
pub use topk::{PcEntry, TopK};

/// Version of the exported metrics JSON schema. Bump on any breaking
/// change to key names or value semantics; the golden-file test in
/// `crates/core` pins it.
///
/// v4 added the `host_profile` top-level section (null unless the run
/// was profiled). v5 added the `report.truncated` flag (true when a
/// graceful stop cut the run short) and the status-snapshot lines
/// emitted by [`live`], which carry the same version.
pub const SCHEMA_VERSION: u64 = 5;

/// A stage of the request lifecycle through the memory hierarchy.
///
/// Stages partition a request's end-to-end latency: `submit →
/// (NocRequest) → bank arrival → (Bank: queueing, tag lookup, MSHR
/// wait) → (Mc: DRAM access, miss owners only) → (NocFill) → fill →
/// (Deliver) → completion`. Hits and MSHR-merged requests have no
/// `Mc`/`NocFill` component; their wait shows up in `Bank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Submission to arrival at the home L2 bank (request NoC hop).
    NocRequest,
    /// Bank arrival to departure toward the response path: tag lookup,
    /// queueing, and MSHR wait. For a miss owner this ends when the
    /// memory-controller request is sent.
    Bank,
    /// Memory-controller send to response (DRAM access; miss owners
    /// only).
    Mc,
    /// Memory-controller response to fill at the bank (fill NoC hop;
    /// miss owners only).
    NocFill,
    /// Fill (or hit) to delivery at the requesting tile (response NoC
    /// hop).
    Deliver,
    /// Submission to completion.
    EndToEnd,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::NocRequest,
        Stage::Bank,
        Stage::Mc,
        Stage::NocFill,
        Stage::Deliver,
        Stage::EndToEnd,
    ];

    /// Stable snake_case name used as the JSON key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::NocRequest => "noc_request",
            Stage::Bank => "bank",
            Stage::Mc => "mc",
            Stage::NocFill => "noc_fill",
            Stage::Deliver => "deliver",
            Stage::EndToEnd => "end_to_end",
        }
    }
}

/// The hierarchy stage held responsible for a closed dependency-stall
/// interval.
///
/// A request's service time is split across stages
/// ([`Stage`]/`MemTelemetry` in `crates/mem` record the exact
/// per-stage latencies); `Blame` is the attribution-side view: which
/// single stage *dominated* the request that kept a core asleep, plus
/// the per-stage cycle split carried on [`RequestCause`]. The sixth
/// attribution column, `other`, lives only on the simulator side — it
/// absorbs stalls with no causal record (telemetry disabled, or a wake
/// with no completing request) and is deliberately not a `Blame`
/// variant so causal records always carry real hierarchy blame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Blame {
    /// Network-on-chip hops: request, fill, and response traversals.
    Noc,
    /// L2 bank service for a hit (tag lookup + bank queueing).
    L2Hit,
    /// L2 miss handling at the bank: lookup plus miss-path residency
    /// while waiting for the fill (merged waiters included).
    L2Miss,
    /// MSHR-full back-pressure: parked in the bank's waiting queue
    /// before an MSHR could be acquired.
    Mshr,
    /// Memory-controller (DRAM) service.
    Mc,
}

impl Blame {
    /// All blame categories, in precedence order (first max wins when
    /// [`RequestCause::dominant`] ties).
    pub const ALL: [Blame; 5] = [
        Blame::Noc,
        Blame::L2Hit,
        Blame::L2Miss,
        Blame::Mshr,
        Blame::Mc,
    ];

    /// Stable snake_case name used as the JSON key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Blame::Noc => "noc",
            Blame::L2Hit => "l2_hit",
            Blame::L2Miss => "l2_miss",
            Blame::Mshr => "mshr",
            Blame::Mc => "mc",
        }
    }
}

/// Number of attribution columns in per-core blame rows: the five
/// [`Blame`] categories plus a trailing `other` column for
/// unattributed stall cycles.
pub const BLAME_COLS: usize = Blame::ALL.len() + 1;

/// Causal record attached to a completed memory request: who issued
/// it, from which instruction, and how its service time splits across
/// hierarchy stages. The orchestrator uses this to attribute the stall
/// interval the completion closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestCause {
    /// Program counter of the instruction that issued the access.
    pub pc: u64,
    /// Cycle the request was submitted to the hierarchy.
    pub submit: u64,
    /// Service cycles by [`Blame`] category, indexed by `Blame as
    /// usize`; sums to the request's end-to-end latency.
    pub blame: [u64; Blame::ALL.len()],
}

impl RequestCause {
    /// Total service cycles across all blame categories (the request's
    /// end-to-end latency).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.blame.iter().sum()
    }

    /// The category with the most service cycles; ties resolve to the
    /// earliest entry in [`Blame::ALL`], keeping attribution
    /// deterministic.
    #[must_use]
    pub fn dominant(&self) -> Blame {
        let mut best = Blame::ALL[0];
        for blame in Blame::ALL {
            if self.blame[blame as usize] > self.blame[best as usize] {
                best = blame;
            }
        }
        best
    }
}

/// Cumulative counters and instantaneous gauges captured at one cycle,
/// fed to [`TelemetrySink::sample`]. The sink differences consecutive
/// snapshots to produce per-epoch [`Sample`]s, so callers only ever
/// report running totals — no delta bookkeeping leaks into the
/// simulator.
#[derive(Debug, Clone, Default)]
pub struct EpochSnapshot {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Per-core cumulative `[retired, dep_stall_cycles,
    /// fetch_stall_cycles]`.
    pub per_core: Vec<[u64; 3]>,
    /// Per-core cumulative dependency-stall cycles by attribution
    /// category (`Blame::ALL` order, then `other`). Covers *closed*
    /// stall intervals only — an in-progress stall is attributed when
    /// its closing completion arrives, which keeps every column
    /// monotone across snapshots.
    pub per_core_blame: Vec<[u64; BLAME_COLS]>,
    /// Per-bank `[hits, misses, mshr_occupancy]` — first two
    /// cumulative, third an instantaneous gauge.
    pub per_bank: Vec<[u64; 3]>,
    /// Cumulative NoC traversals.
    pub noc_traversals: u64,
    /// Cumulative completed hierarchy requests.
    pub completed: u64,
    /// Requests parked waiting for an MSHR right now.
    pub queued_requests: u64,
    /// Requests in flight anywhere in the hierarchy right now.
    pub in_flight: u64,
    /// Memory-controller channels busy right now.
    pub mc_busy_channels: u64,
}

/// Epoch bookkeeping for the simulation loop: decides when the next
/// sample is due, differences cumulative snapshots into delta
/// [`Sample`]s, and owns the resulting [`TimeSeries`].
#[derive(Debug)]
pub struct TelemetrySink {
    interval: u64,
    next_due: u64,
    last: EpochSnapshot,
    series: TimeSeries,
}

impl TelemetrySink {
    /// A sink sampling every `interval` cycles (minimum 1), starting
    /// from cycle 0.
    #[must_use]
    pub fn new(interval: u64) -> TelemetrySink {
        let interval = interval.max(1);
        TelemetrySink {
            interval,
            next_due: interval,
            last: EpochSnapshot::default(),
            series: TimeSeries::default(),
        }
    }

    /// The configured sampling interval in cycles.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// First cycle at which the next sample is due. The simulator can
    /// fast-forward past this; the epoch then simply covers more
    /// cycles.
    #[must_use]
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// Records one epoch ending at `snapshot.cycle`. Counters in the
    /// snapshot are cumulative; the sink differences them against the
    /// previous snapshot. Zero-length epochs are dropped.
    pub fn sample(&mut self, snapshot: EpochSnapshot) {
        let start = self.last.cycle;
        let end = snapshot.cycle;
        // Schedule the next epoch boundary strictly after `end`, on the
        // interval grid, so a fast-forwarded cycle counter never causes
        // back-to-back zero-length epochs.
        self.next_due = end + self.interval - end % self.interval;
        if end <= start {
            return;
        }

        let per_core: Vec<[u64; 3]> = diff_rows(&snapshot.per_core, &self.last.per_core, [true; 3]);
        let per_core_blame: Vec<[u64; BLAME_COLS]> = diff_rows(
            &snapshot.per_core_blame,
            &self.last.per_core_blame,
            [true; BLAME_COLS],
        );
        let per_bank: Vec<[u64; 3]> =
            diff_rows(&snapshot.per_bank, &self.last.per_bank, [true, true, false]);

        let sum_col = |rows: &[[u64; 3]], col: usize| rows.iter().map(|r| r[col]).sum::<u64>();
        let sample = Sample {
            start,
            end,
            retired: sum_col(&per_core, 0),
            dep_stall_cycles: sum_col(&per_core, 1),
            fetch_stall_cycles: sum_col(&per_core, 2),
            l2_hits: sum_col(&per_bank, 0),
            l2_misses: sum_col(&per_bank, 1),
            noc_traversals: snapshot.noc_traversals - self.last.noc_traversals,
            completed: snapshot.completed - self.last.completed,
            mshr_occupancy: sum_col(&per_bank, 2),
            queued_requests: snapshot.queued_requests,
            in_flight: snapshot.in_flight,
            mc_busy_channels: snapshot.mc_busy_channels,
            per_core,
            per_core_blame,
            per_bank,
        };
        self.series.push(sample);
        self.last = snapshot;
    }

    /// The accumulated time series.
    #[must_use]
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consumes the sink, returning the time series.
    #[must_use]
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

/// Per-row difference of cumulative snapshots; `diff[i]` subtracts the
/// column, otherwise the newer gauge value is kept. Rows absent from
/// the older snapshot diff against zero.
fn diff_rows<const N: usize>(
    newer: &[[u64; N]],
    older: &[[u64; N]],
    diff: [bool; N],
) -> Vec<[u64; N]> {
    newer
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let prev = older.get(i).copied().unwrap_or([0; N]);
            let mut out = [0u64; N];
            for c in 0..N {
                out[c] = if diff[c] {
                    row[c].saturating_sub(prev[c])
                } else {
                    row[c]
                };
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(cycle: u64, retired: u64, hits: u64) -> EpochSnapshot {
        EpochSnapshot {
            cycle,
            per_core: vec![[retired, cycle / 2, 0]],
            per_bank: vec![[hits, hits / 2, 3]],
            noc_traversals: hits * 2,
            completed: hits,
            ..EpochSnapshot::default()
        }
    }

    #[test]
    fn sink_differences_cumulative_counters() {
        let mut sink = TelemetrySink::new(100);
        sink.sample(snapshot(100, 50, 10));
        sink.sample(snapshot(200, 120, 25));
        let samples = sink.series().samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].retired, 50);
        assert_eq!(samples[1].retired, 70);
        assert_eq!(samples[1].l2_hits, 15);
        assert_eq!(samples[1].completed, 15);
        // Gauge column passes through untouched.
        assert_eq!(samples[1].per_bank[0][2], 3);
        // Delta sum equals the final cumulative value.
        let total: u64 = samples.iter().map(|s| s.retired).sum();
        assert_eq!(total, 120);
    }

    #[test]
    fn next_due_follows_the_interval_grid_after_fast_forward() {
        let mut sink = TelemetrySink::new(100);
        assert_eq!(sink.next_due(), 100);
        // Fast-forwarded well past several boundaries.
        sink.sample(snapshot(370, 10, 1));
        assert_eq!(sink.next_due(), 400);
        // Landing exactly on a boundary schedules the following one.
        sink.sample(snapshot(400, 12, 2));
        assert_eq!(sink.next_due(), 500);
    }

    #[test]
    fn zero_length_epochs_are_dropped() {
        let mut sink = TelemetrySink::new(10);
        sink.sample(snapshot(10, 5, 1));
        sink.sample(snapshot(10, 5, 1));
        assert_eq!(sink.series().len(), 1);
    }

    #[test]
    fn interval_is_clamped_to_one() {
        let sink = TelemetrySink::new(0);
        assert_eq!(sink.interval(), 1);
        assert_eq!(sink.next_due(), 1);
    }

    #[test]
    fn blame_rows_difference_like_other_counters() {
        let mut sink = TelemetrySink::new(100);
        let mut first = snapshot(100, 10, 1);
        first.per_core_blame = vec![[5, 0, 10, 0, 20, 3]];
        sink.sample(first);
        let mut second = snapshot(200, 20, 2);
        second.per_core_blame = vec![[7, 0, 25, 4, 20, 3]];
        sink.sample(second);
        let samples = sink.series().samples();
        assert_eq!(samples[0].per_core_blame, vec![[5, 0, 10, 0, 20, 3]]);
        assert_eq!(samples[1].per_core_blame, vec![[2, 0, 15, 4, 0, 0]]);
    }

    #[test]
    fn dominant_blame_ties_resolve_in_all_order() {
        let cause = RequestCause {
            pc: 0x80,
            submit: 10,
            blame: [4, 0, 4, 0, 4],
        };
        assert_eq!(cause.dominant(), Blame::Noc);
        assert_eq!(cause.total(), 12);
        let mc_heavy = RequestCause {
            pc: 0x80,
            submit: 10,
            blame: [4, 0, 4, 0, 5],
        };
        assert_eq!(mc_heavy.dominant(), Blame::Mc);
    }

    #[test]
    fn blame_names_are_unique_and_stable() {
        let names: Vec<&str> = Blame::ALL.iter().map(|b| b.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(Blame::L2Miss.name(), "l2_miss");
        assert_eq!(BLAME_COLS, 6);
    }

    #[test]
    fn stage_names_are_unique_and_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(Stage::EndToEnd.name(), "end_to_end");
    }
}
