//! Host-side self-profiler: the simulator observing itself.
//!
//! Every other module in this workspace observes the *simulated*
//! machine; this one observes the simulator. It provides scoped phase
//! timers that build a hierarchical phase tree, log2 host-latency
//! histograms (reusing [`Histogram`]), named monotone counters, and
//! per-core value histograms (chunk lengths, run lengths) — everything
//! the orchestrator needs to explain where host time goes without any
//! external profiler.
//!
//! # The wall-clock exception
//!
//! This file (together with [`crate::live`], which paces the status
//! stream) is allowed to call [`Instant::now`]. The `wall-clock` lint
//! in `crates/lint` pins the exception to these paths; `Instant::now`
//! anywhere else is a finding.
//! Keeping every wall-clock read behind [`HostProf`] and [`WallClock`]
//! makes the determinism argument local: host time can be *measured*
//! here but never *returned into* simulated state, because nothing in
//! this module exposes a value the simulator feeds back into a model
//! decision.
//!
//! # Deterministic counter mode
//!
//! [`ProfClock::Counter`] runs the same phase tree and counters with
//! zero wall-clock reads: phase entry counts, abort-reason counters and
//! per-core histograms all derive from simulated state only, so two
//! legal schedules of the same simulation produce byte-identical
//! profiles. `coyote-audit --race --profile` uses this mode to extend
//! the perturbation detector over the profiling layer itself.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::hist::Histogram;

/// Time source for a [`HostProf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfClock {
    /// Real host time: phase durations from [`Instant::now`].
    Wall,
    /// Wall-clock-free deterministic mode: phases count entries but
    /// record no durations. Profiles are byte-identical across hosts
    /// and legal schedules.
    Counter,
}

impl ProfClock {
    /// Stable name used as the JSON `mode` value.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProfClock::Wall => "wall",
            ProfClock::Counter => "counter",
        }
    }
}

/// Proof that a phase was entered; hand it back to [`HostProf::exit`].
///
/// Deliberately not `Copy`/`Clone`: one `enter` pairs with one `exit`.
/// Only this module can construct one, so the wall-clock read it may
/// carry cannot escape.
#[must_use = "a dropped span never closes its phase"]
#[derive(Debug)]
pub struct SpanToken {
    node: usize,
    start: Option<Instant>,
}

/// One node of the phase tree.
#[derive(Debug)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
    hist: Histogram,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
            hist: Histogram::new(),
        }
    }
}

/// Read-only view of one phase, as returned by [`HostProf::phase`].
#[derive(Debug, Clone, Copy)]
pub struct Phase<'a> {
    /// Phase name as passed to [`HostProf::enter`].
    pub name: &'static str,
    /// Times the phase was entered.
    pub count: u64,
    /// Total nanoseconds spent inside (zero in counter mode).
    pub total_ns: u64,
    /// Log2 histogram of per-entry nanoseconds (empty in counter mode).
    pub hist: &'a Histogram,
    /// Node ids of child phases, in first-entry order.
    pub children: &'a [usize],
}

/// The host-side profiler: a phase tree, named counters, and per-core
/// histograms. Create one per simulation; the orchestrator threads it
/// through its hot path behind an `Option` so the off state costs one
/// branch.
#[derive(Debug)]
pub struct HostProf {
    clock: ProfClock,
    cores: usize,
    /// `nodes[0]` is a synthetic root that is never timed; real phases
    /// hang off it.
    nodes: Vec<Node>,
    /// Path currently open, rooted at node 0.
    stack: Vec<usize>,
    counters: BTreeMap<&'static str, u64>,
    core_hists: BTreeMap<&'static str, Vec<Histogram>>,
}

impl HostProf {
    /// A fresh profiler for a `cores`-core simulation.
    #[must_use]
    pub fn new(clock: ProfClock, cores: usize) -> HostProf {
        HostProf {
            clock,
            cores: cores.max(1),
            nodes: vec![Node::new("")],
            stack: vec![0],
            counters: BTreeMap::new(),
            core_hists: BTreeMap::new(),
        }
    }

    /// The profiler's time source.
    #[must_use]
    pub fn clock(&self) -> ProfClock {
        self.clock
    }

    /// Number of cores per-core histograms are sized for.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Opens a phase named `name` nested under the phase currently
    /// open (or at the top level). Reuses the node if this parent has
    /// seen the name before, so the tree stays bounded by the set of
    /// distinct call paths.
    pub fn enter(&mut self, name: &'static str) -> SpanToken {
        let parent = *self.stack.last().expect("stack always holds the root");
        let node = match self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name)
        {
            Some(existing) => existing,
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::new(name));
                self.nodes[parent].children.push(id);
                id
            }
        };
        self.stack.push(node);
        let start = match self.clock {
            ProfClock::Wall => Some(Instant::now()),
            ProfClock::Counter => None,
        };
        SpanToken { node, start }
    }

    /// Closes the phase opened by `token`, accumulating its duration
    /// (wall mode) or just its entry count (counter mode).
    ///
    /// Consumes the token by design — it is a linear proof-of-entry,
    /// so a span cannot be closed twice.
    #[allow(clippy::needless_pass_by_value)]
    pub fn exit(&mut self, token: SpanToken) {
        debug_assert_eq!(
            self.stack.last().copied(),
            Some(token.node),
            "phase exits must nest"
        );
        if self.stack.len() > 1 {
            self.stack.pop();
        }
        let node = &mut self.nodes[token.node];
        node.count += 1;
        if let Some(start) = token.start {
            let ns = saturating_ns(start.elapsed());
            node.total_ns += ns;
            node.hist.record(ns);
        }
    }

    /// Adds `n` to the named monotone counter.
    pub fn bump(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of a named counter (0 if never bumped).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &value)| (name, value))
    }

    /// Records `value` into the per-core histogram family `name` for
    /// `core`. Families are created lazily, sized to [`Self::cores`].
    pub fn record_core(&mut self, name: &'static str, core: usize, value: u64) {
        let hists = self
            .core_hists
            .entry(name)
            .or_insert_with(|| vec![Histogram::new(); self.cores]);
        if let Some(hist) = hists.get_mut(core) {
            hist.record(value);
        }
    }

    /// The per-core histograms of a family, indexed by core id.
    #[must_use]
    pub fn core_hists(&self, name: &str) -> Option<&[Histogram]> {
        self.core_hists.get(name).map(Vec::as_slice)
    }

    /// All per-core histogram family names, in name order.
    pub fn core_hist_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.core_hists.keys().copied()
    }

    /// All cores of a family merged into one histogram (empty if the
    /// family was never recorded).
    #[must_use]
    pub fn merged_core_hist(&self, name: &str) -> Histogram {
        let mut merged = Histogram::new();
        if let Some(hists) = self.core_hists.get(name) {
            for hist in hists {
                merged.merge(hist);
            }
        }
        merged
    }

    /// Top-level phase node ids, in first-entry order.
    #[must_use]
    pub fn roots(&self) -> &[usize] {
        &self.nodes[0].children
    }

    /// Names of the phases currently open, outermost first (empty when
    /// nothing is open). Crash dumps use this to report what the
    /// simulator was doing when a run died mid-phase.
    #[must_use]
    pub fn open_phases(&self) -> Vec<&'static str> {
        self.stack[1..]
            .iter()
            .map(|&id| self.nodes[id].name)
            .collect()
    }

    /// Read-only view of a phase node.
    #[must_use]
    pub fn phase(&self, id: usize) -> Phase<'_> {
        let node = &self.nodes[id];
        Phase {
            name: node.name,
            count: node.count,
            total_ns: node.total_ns,
            hist: &node.hist,
            children: &node.children,
        }
    }

    /// Nanoseconds spent in a phase *excluding* its children
    /// (saturating: clock jitter can make children sum past the
    /// parent by a few ns).
    #[must_use]
    pub fn exclusive_ns(&self, id: usize) -> u64 {
        let node = &self.nodes[id];
        let child_ns: u64 = node.children.iter().map(|&c| self.nodes[c].total_ns).sum();
        node.total_ns.saturating_sub(child_ns)
    }

    /// The phase tree as flamegraph-compatible folded stacks: one
    /// `path;to;phase value` line per node, sorted lexicographically.
    /// Values are exclusive nanoseconds in wall mode and exclusive
    /// entry counts in counter mode.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut lines = Vec::new();
        let mut walk: Vec<(usize, String)> = self
            .roots()
            .iter()
            .map(|&id| (id, self.nodes[id].name.to_owned()))
            .collect();
        while let Some((id, path)) = walk.pop() {
            let node = &self.nodes[id];
            let value = match self.clock {
                ProfClock::Wall => self.exclusive_ns(id),
                ProfClock::Counter => {
                    let child_count: u64 = node.children.iter().map(|&c| self.nodes[c].count).sum();
                    node.count.saturating_sub(child_count)
                }
            };
            lines.push(format!("{path} {value}"));
            for &child in &node.children {
                walk.push((child, format!("{path};{}", self.nodes[child].name)));
            }
        }
        lines.sort_unstable();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }
}

/// A one-shot wall-clock stopwatch for code that needs a host duration
/// (the end-of-run `wall_time` report field) without holding a full
/// profiler. Exists so `Instant` never appears outside this module.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Starts the stopwatch.
    #[must_use]
    pub fn start() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`WallClock::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Duration → nanoseconds, saturating at `u64::MAX` (584 years).
fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_tree_nests_and_reuses_nodes() {
        let mut prof = HostProf::new(ProfClock::Counter, 1);
        for _ in 0..3 {
            let outer = prof.enter("execute");
            let inner = prof.enter("fused_window");
            prof.exit(inner);
            prof.exit(outer);
        }
        let scan = prof.enter("attr_scan");
        prof.exit(scan);
        assert_eq!(prof.roots().len(), 2);
        let execute = prof.phase(prof.roots()[0]);
        assert_eq!(execute.name, "execute");
        assert_eq!(execute.count, 3);
        assert_eq!(execute.children.len(), 1);
        let window = prof.phase(execute.children[0]);
        assert_eq!(window.name, "fused_window");
        assert_eq!(window.count, 3);
        let scan = prof.phase(prof.roots()[1]);
        assert_eq!(scan.name, "attr_scan");
        assert_eq!(scan.count, 1);
    }

    #[test]
    fn counter_mode_records_no_time() {
        let mut prof = HostProf::new(ProfClock::Counter, 2);
        let span = prof.enter("step");
        prof.exit(span);
        let step = prof.phase(prof.roots()[0]);
        assert_eq!(step.total_ns, 0);
        assert!(step.hist.is_empty());
        assert_eq!(step.count, 1);
    }

    #[test]
    fn wall_mode_accumulates_time_and_histogram() {
        let mut prof = HostProf::new(ProfClock::Wall, 1);
        for _ in 0..4 {
            let span = prof.enter("step");
            std::hint::black_box(0u64);
            prof.exit(span);
        }
        let step = prof.phase(prof.roots()[0]);
        assert_eq!(step.count, 4);
        assert_eq!(step.hist.count(), 4);
        assert_eq!(step.hist.sum(), step.total_ns);
    }

    #[test]
    fn counters_are_monotone_and_sorted() {
        let mut prof = HostProf::new(ProfClock::Counter, 1);
        prof.bump("window/cross_core_conflict", 2);
        prof.bump("predecode/slots", 10);
        prof.bump("window/cross_core_conflict", 1);
        assert_eq!(prof.counter("window/cross_core_conflict"), 3);
        assert_eq!(prof.counter("never"), 0);
        let names: Vec<&str> = prof.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["predecode/slots", "window/cross_core_conflict"]);
    }

    #[test]
    fn per_core_histograms_merge() {
        let mut prof = HostProf::new(ProfClock::Counter, 3);
        prof.record_core("chunk_len", 0, 4);
        prof.record_core("chunk_len", 2, 16);
        prof.record_core("chunk_len", 2, 16);
        // Out-of-range core ids are dropped, not a panic.
        prof.record_core("chunk_len", 9, 1);
        let hists = prof.core_hists("chunk_len").expect("family exists");
        assert_eq!(hists.len(), 3);
        assert_eq!(hists[0].count(), 1);
        assert_eq!(hists[1].count(), 0);
        assert_eq!(hists[2].count(), 2);
        let merged = prof.merged_core_hist("chunk_len");
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.max(), 16);
        assert!(prof.merged_core_hist("absent").is_empty());
        let names: Vec<&str> = prof.core_hist_names().collect();
        assert_eq!(names, vec!["chunk_len"]);
    }

    #[test]
    fn folded_stacks_are_sorted_exclusive_and_newline_terminated() {
        let mut prof = HostProf::new(ProfClock::Counter, 1);
        for _ in 0..5 {
            let outer = prof.enter("execute");
            let inner = prof.enter("sequential");
            prof.exit(inner);
            prof.exit(outer);
        }
        let lone = prof.enter("wake");
        prof.exit(lone);
        let folded = prof.folded();
        assert_eq!(folded, "execute 0\nexecute;sequential 5\nwake 1\n");
    }

    #[test]
    fn wall_clock_measures_forward_time() {
        let clock = WallClock::start();
        std::hint::black_box(0u64);
        let first = clock.elapsed();
        let second = clock.elapsed();
        assert!(second >= first);
    }

    #[test]
    fn clock_names_are_stable() {
        assert_eq!(ProfClock::Wall.name(), "wall");
        assert_eq!(ProfClock::Counter.name(), "counter");
    }
}
