//! A hand-rolled JSON document model: writer plus a minimal parser.
//!
//! The build environment is offline (no serde), and the metrics schema
//! is small and stable, so a tiny tree model is the whole dependency.
//! Objects preserve insertion order, which keeps exports byte-stable
//! across runs — downstream golden files and CI diffs rely on that.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (cycle counts, event totals).
    UInt(u64),
    /// Signed integer (exit codes).
    Int(i64),
    /// Floating point; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    #[must_use]
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends a field to an object; panics on non-objects (builder
    /// misuse, caught in tests).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("with() on non-object {other:?}"),
        }
        self
    }

    /// Looks up a field of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object keys in order, if this is an object.
    #[must_use]
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            JsonValue::Object(fields) => Some(fields.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }

    /// The value as `u64` (from `UInt` or an integral `Int`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (from any numeric variant).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip Display is deterministic;
                    // force a trailing `.0` so integers stay floats on
                    // re-parse.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write_into(out, indent, depth + 1);
                });
            }
            JsonValue::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_into(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        // Non-negative integers canonicalise to `UInt` so that values
        // round-trip through the parser (which prefers `UInt`) unchanged.
        match u64::try_from(v) {
            Ok(u) => JsonValue::UInt(u),
            Err(_) => JsonValue::Int(v),
        }
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

/// Error from [`parse`]: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a JSON document (the subset this crate's writer produces,
/// which is standard JSON minus `\uXXXX` surrogate pairs in input).
///
/// # Errors
///
/// Returns [`JsonParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonParseError {
    JsonParseError {
        offset,
        message: message.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), JsonParseError> {
    if bytes.get(*pos) == Some(&token) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", token as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonParseError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{literal}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| err(*pos, "non-scalar \\u escape"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if text.is_empty() {
        return Err(err(start, "expected a value"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(JsonValue::Int(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| err(start, "malformed number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let doc = JsonValue::object()
            .with("a", 1u64)
            .with("b", "two")
            .with("c", JsonValue::Array(vec![JsonValue::Bool(true)]));
        assert_eq!(doc.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(JsonValue::as_str), Some("two"));
        assert_eq!(doc.keys(), Some(vec!["a", "b", "c"]));
    }

    #[test]
    fn compact_serialization_is_stable() {
        let doc = JsonValue::object()
            .with("n", 42u64)
            .with("f", 2.5)
            .with("s", "x\"y\\z\n");
        assert_eq!(
            doc.to_string_compact(),
            r#"{"n":42,"f":2.5,"s":"x\"y\\z\n"}"#
        );
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::Float(3.0).to_string_compact(), "3.0");
        assert_eq!(JsonValue::Float(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn pretty_output_parses_back() {
        let doc = JsonValue::object()
            .with("schema_version", 1u64)
            .with(
                "nested",
                JsonValue::object().with("list", JsonValue::Array(vec![1u64.into(), 2u64.into()])),
            )
            .with("neg", -7i64)
            .with("pi", 3.25);
        let text = doc.to_string_pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let parsed = parse(r#"{"k":"a\tbAç"}"#).unwrap();
        assert_eq!(parsed.get("k").and_then(JsonValue::as_str), Some("a\tbAç"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn numbers_round_trip_by_kind() {
        let parsed = parse("[0,18446744073709551615,-3,2.5]").unwrap();
        let items = parsed.as_array().unwrap();
        assert_eq!(items[0], JsonValue::UInt(0));
        assert_eq!(items[1], JsonValue::UInt(u64::MAX));
        assert_eq!(items[2], JsonValue::Int(-3));
        assert_eq!(items[3], JsonValue::Float(2.5));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::object());
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(Vec::new()));
        assert_eq!(JsonValue::object().to_string_compact(), "{}");
    }
}
