//! Bounded top-K accumulator for causal stall attribution.
//!
//! The orchestrator attributes every closed stall interval to the
//! program counter of the memory request that ended it. Over a
//! billion-cycle run the set of distinct PCs is unbounded in principle,
//! so the accumulator keeps memory O(K) with the *space-saving* sketch:
//! a full table up to `capacity` entries, then eviction of the smallest
//! entry, whose cycle total the newcomer inherits as a recorded
//! overestimation bound ([`PcEntry::error`]).
//!
//! Determinism: entries live in a `BTreeMap` keyed by PC, eviction
//! picks the victim by `(cycles, pc)` with a fixed tie-break, and the
//! caller applies additions in canonical per-cycle order — so two legal
//! schedules of the same simulation produce byte-identical rankings.

use std::collections::BTreeMap;

use crate::Blame;

/// Accumulated attribution for one program counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcEntry {
    /// Total stall cycles attributed to this PC (including any
    /// inherited [`PcEntry::error`]).
    pub cycles: u64,
    /// Stall intervals attributed to this PC since (re)insertion.
    pub count: u64,
    /// Attributed cycles by [`Blame`] category (exact part only:
    /// `blame` sums to `cycles - error`).
    pub blame: [u64; Blame::ALL.len()],
    /// Space-saving overestimation bound: cycles inherited from the
    /// entry this one evicted (0 while the table has never been full).
    pub error: u64,
    /// Union of the caller's opaque blocked-register masks across all
    /// intervals attributed here (unioning is order-insensitive, so
    /// this stays schedule-deterministic).
    pub reg_mask: [u64; 2],
}

/// Bounded top-K table of PCs ranked by attributed stall cycles.
#[derive(Debug, Clone)]
pub struct TopK {
    capacity: usize,
    entries: BTreeMap<u64, PcEntry>,
}

impl TopK {
    /// A table holding at most `capacity` PCs (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> TopK {
        TopK {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of PCs currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been attributed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Attributes `cycles` of stall time to `pc` under `blame`.
    /// `reg_mask` is an opaque caller bitmask (the blocked registers)
    /// unioned into the entry.
    pub fn add(&mut self, pc: u64, cycles: u64, blame: Blame, reg_mask: [u64; 2]) {
        if let Some(entry) = self.entries.get_mut(&pc) {
            entry.cycles += cycles;
            entry.count += 1;
            entry.blame[blame as usize] += cycles;
            entry.reg_mask[0] |= reg_mask[0];
            entry.reg_mask[1] |= reg_mask[1];
            return;
        }
        let mut entry = PcEntry::default();
        if self.entries.len() >= self.capacity {
            // Evict the smallest entry; deterministic tie-break on the
            // larger PC so low PCs survive equal-weight collisions.
            let victim = self
                .entries
                .iter()
                .map(|(&vpc, e)| (e.cycles, std::cmp::Reverse(vpc)))
                .min()
                .map(|(_, std::cmp::Reverse(vpc))| vpc)
                .expect("table is non-empty at capacity");
            let evicted = self
                .entries
                .remove(&victim)
                .expect("victim key just observed");
            entry.error = evicted.cycles;
            entry.cycles = evicted.cycles;
        }
        entry.cycles += cycles;
        entry.count = 1;
        entry.blame[blame as usize] = cycles;
        entry.reg_mask = reg_mask;
        self.entries.insert(pc, entry);
    }

    /// The tracked entries ranked by attributed cycles (descending),
    /// ties broken by ascending PC.
    #[must_use]
    pub fn ranked(&self) -> Vec<(u64, PcEntry)> {
        let mut out: Vec<(u64, PcEntry)> = self.entries.iter().map(|(&pc, &e)| (pc, e)).collect();
        out.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
        out
    }

    /// Total cycles attributed across all tracked PCs (including
    /// inherited error mass).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.entries.values().map(|e| e.cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additions_accumulate_per_pc() {
        let mut t = TopK::new(8);
        t.add(0x100, 30, Blame::Mc, [1, 0]);
        t.add(0x100, 20, Blame::Noc, [2, 0]);
        t.add(0x200, 5, Blame::L2Hit, [0, 4]);
        let ranked = t.ranked();
        assert_eq!(ranked[0].0, 0x100);
        assert_eq!(ranked[0].1.cycles, 50);
        assert_eq!(ranked[0].1.count, 2);
        assert_eq!(ranked[0].1.blame[Blame::Mc as usize], 30);
        assert_eq!(ranked[0].1.reg_mask, [3, 0]);
        assert_eq!(ranked[1].0, 0x200);
    }

    #[test]
    fn eviction_keeps_table_bounded_and_inherits_error() {
        let mut t = TopK::new(2);
        t.add(0x100, 100, Blame::Mc, [0; 2]);
        t.add(0x200, 10, Blame::Mc, [0; 2]);
        // Third PC evicts the smallest (0x200) and inherits its mass.
        t.add(0x300, 1, Blame::Noc, [0; 2]);
        assert_eq!(t.len(), 2);
        let ranked = t.ranked();
        assert_eq!(ranked[0].0, 0x100);
        assert_eq!(ranked[1].0, 0x300);
        assert_eq!(ranked[1].1.cycles, 11);
        assert_eq!(ranked[1].1.error, 10);
        // Exact blame mass excludes the inherited error.
        let exact: u64 = ranked[1].1.blame.iter().sum();
        assert_eq!(exact, ranked[1].1.cycles - ranked[1].1.error);
    }

    #[test]
    fn eviction_tie_breaks_on_larger_pc() {
        let mut t = TopK::new(2);
        t.add(0x100, 10, Blame::Mc, [0; 2]);
        t.add(0x200, 10, Blame::Mc, [0; 2]);
        t.add(0x300, 1, Blame::Mc, [0; 2]);
        // 0x200 (larger PC among the tied minima) was evicted.
        assert!(t.ranked().iter().any(|(pc, _)| *pc == 0x100));
        assert!(t.ranked().iter().all(|(pc, _)| *pc != 0x200));
    }

    #[test]
    fn capacity_one_tracks_a_single_rolling_entry() {
        // Zero capacity clamps to one; the table then holds exactly the
        // most recent insertion, inheriting all prior mass as error.
        let mut t = TopK::new(0);
        assert_eq!(t.capacity(), 1);
        assert!(t.is_empty());
        t.add(0x100, 7, Blame::Mc, [0; 2]);
        t.add(0x200, 3, Blame::Noc, [0; 2]);
        t.add(0x300, 2, Blame::Mc, [0; 2]);
        assert_eq!(t.len(), 1);
        let ranked = t.ranked();
        assert_eq!(ranked[0].0, 0x300);
        // Space-saving invariant: total mass is never lost, and the
        // error bound is exactly the evicted predecessor's total.
        assert_eq!(ranked[0].1.cycles, 12);
        assert_eq!(ranked[0].1.error, 10);
        assert_eq!(t.total_cycles(), 12);
        // Re-adding the resident key accumulates without eviction.
        t.add(0x300, 5, Blame::Mc, [0; 2]);
        assert_eq!(t.ranked()[0].1.cycles, 17);
        assert_eq!(t.ranked()[0].1.count, 2);
    }

    #[test]
    fn all_equal_weights_churn_deterministically() {
        // Every insertion carries the same weight, so each newcomer
        // evicts by the (cycles, larger-pc) rule alone. The outcome
        // must be a pure function of insertion order.
        let run = || {
            let mut t = TopK::new(3);
            for pc in [0x500u64, 0x400, 0x300, 0x200, 0x100] {
                t.add(pc, 10, Blame::Mc, [0; 2]);
            }
            t
        };
        let a = run();
        let b = run();
        assert_eq!(a.ranked(), b.ranked());
        assert_eq!(a.len(), 3);
        // Total mass: 5 insertions x 10 cycles, none lost to eviction.
        assert_eq!(a.total_cycles(), 50);
        // Everything still tracked carries an inherited error bound
        // except the untouched survivor of the first fill.
        let errors: Vec<u64> = a.ranked().iter().map(|(_, e)| e.error).collect();
        assert!(errors.iter().any(|&e| e > 0));
    }

    #[test]
    fn ranking_is_cycles_desc_then_pc_asc() {
        let mut t = TopK::new(8);
        t.add(0x300, 10, Blame::Mc, [0; 2]);
        t.add(0x100, 10, Blame::Mc, [0; 2]);
        t.add(0x200, 99, Blame::Mc, [0; 2]);
        let pcs: Vec<u64> = t.ranked().iter().map(|(pc, _)| *pc).collect();
        assert_eq!(pcs, vec![0x200, 0x100, 0x300]);
    }
}
