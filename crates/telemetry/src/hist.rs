//! Log2-bucketed latency histograms.
//!
//! Request latencies in the simulated hierarchy span four orders of
//! magnitude (a local L2 hit is tens of cycles; an MSHR-queued DRAM
//! round trip can be thousands), so fixed-width buckets either lose the
//! tail or waste space. A power-of-two bucketing keeps every recorded
//! value within 2x of its bucket bound, needs no configuration, and
//! merges across banks/controllers by plain addition.

/// Number of buckets: one per possible `floor(log2(v)) + 1`, plus the
/// dedicated zero bucket — covers the full `u64` range.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (cycle latencies).
///
/// Bucket 0 holds exact zeros; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Exact count, sum, min and max are kept
/// alongside, so mean is exact while percentiles are bucket-resolution
/// upper bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket.
    #[must_use]
    pub fn bucket_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples in O(1) — for converting external
    /// per-value count tables (e.g. superblock run-length counters)
    /// into a histogram without replaying every sample.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper-bound estimate of the `q` quantile (`0.0..=1.0`): the
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`, clamped to the exact observed min/max.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_bound(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending bound order.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_bound(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(10), 1023);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn exact_aggregates() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 0, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1060);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 212.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        bulk.record_n(12, 90);
        bulk.record_n(900, 10);
        bulk.record_n(7, 0); // no-op: must not disturb min/count
        let mut single = Histogram::new();
        for _ in 0..90 {
            single.record(12);
        }
        for _ in 0..10 {
            single.record(900);
        }
        assert_eq!(bulk, single);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        // 90 fast samples (bucket bound 15), 10 slow (bucket bound 1023).
        for _ in 0..90 {
            h.record(12);
        }
        for _ in 0..10 {
            h.record(900);
        }
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.95), 900); // clamped to observed max
        assert_eq!(h.quantile(1.0), 900);
        // Quantiles never undershoot the observed min.
        assert!(h.quantile(0.01) >= 12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        a.record(100);
        b.record(7);
        b.record(3000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 3112);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 3000);
    }

    #[test]
    fn nonzero_buckets_sorted_and_complete() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(100);
        h.record(100);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (127, 2)]);
        let total: u64 = buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, h.count());
    }
}
