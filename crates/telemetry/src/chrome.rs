//! Chrome trace-event JSON builder.
//!
//! Emits the subset of the trace-event format that chrome://tracing and
//! Perfetto load without configuration: complete events (`"ph": "X"`)
//! with microsecond-denominated `ts`/`dur` fields. We map one simulated
//! cycle to one microsecond, so the Perfetto timeline reads directly in
//! cycles. `pid` groups a subsystem (cores vs. memory hierarchy) and
//! `tid` selects the row within it.

use crate::json::JsonValue;

/// One complete ("X") trace event.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Slice label shown on the timeline.
    pub name: String,
    /// Comma-separated categories (filterable in the UI).
    pub cat: &'static str,
    /// Start, in cycles.
    pub ts: u64,
    /// Duration, in cycles.
    pub dur: u64,
    /// Process row group.
    pub pid: u32,
    /// Thread row within the group.
    pub tid: u32,
    /// Extra `args` fields shown when the slice is selected.
    pub args: Vec<(String, JsonValue)>,
}

/// One endpoint of a flow arrow: a flow-start ("s") or flow-finish
/// ("f") event. Perfetto draws an arrow from each start to the finish
/// sharing its `id`, binding each endpoint to the slice enclosing its
/// `(pid, tid, ts)` point — which is how stall intervals are visually
/// linked to the memory request that caused them.
#[derive(Debug, Clone)]
pub struct FlowEvent {
    /// Flow label (shared by both endpoints).
    pub name: String,
    /// Comma-separated categories.
    pub cat: &'static str,
    /// Identifier pairing a start with its finish.
    pub id: u64,
    /// Timestamp, in cycles; must fall inside the slice to bind to.
    pub ts: u64,
    /// Process row group of the bound slice.
    pub pid: u32,
    /// Thread row of the bound slice.
    pub tid: u32,
    /// `true` emits phase "s" (start), `false` phase "f" (finish,
    /// binding to the enclosing slice via `bp: "e"`).
    pub start: bool,
}

/// Builder that accumulates events and serializes the final document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
    flows: Vec<FlowEvent>,
    names: Vec<((u32, u32), String)>,
    process_names: Vec<(u32, String)>,
}

impl ChromeTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Labels a `pid` row group (emitted as a `process_name` metadata
    /// event).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.process_names.push((pid, name.to_owned()));
    }

    /// Labels a `(pid, tid)` row (emitted as a `thread_name` metadata
    /// event).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.names.push(((pid, tid), name.to_owned()));
    }

    /// Appends a complete event.
    pub fn push(&mut self, event: ChromeEvent) {
        self.events.push(event);
    }

    /// Appends a flow endpoint (arrow start or finish).
    pub fn push_flow(&mut self, flow: FlowEvent) {
        self.flows.push(flow);
    }

    /// Number of flow endpoints recorded so far.
    #[must_use]
    pub fn flow_len(&self) -> usize {
        self.flows.len()
    }

    /// Number of slice events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no slice events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to the trace-event JSON object format
    /// (`{"traceEvents": [...], "displayTimeUnit": "ns"}`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut events = Vec::with_capacity(
            self.events.len() + self.flows.len() + self.names.len() + self.process_names.len(),
        );
        for (pid, name) in &self.process_names {
            events.push(metadata_event("process_name", *pid, 0, name));
        }
        for ((pid, tid), name) in &self.names {
            events.push(metadata_event("thread_name", *pid, *tid, name));
        }
        for e in &self.events {
            let mut obj = JsonValue::object()
                .with("name", e.name.as_str())
                .with("cat", e.cat)
                .with("ph", "X")
                .with("ts", e.ts)
                .with("dur", e.dur)
                .with("pid", e.pid)
                .with("tid", e.tid);
            if !e.args.is_empty() {
                obj = obj.with("args", JsonValue::Object(e.args.clone()));
            }
            events.push(obj);
        }
        for f in &self.flows {
            let mut obj = JsonValue::object()
                .with("name", f.name.as_str())
                .with("cat", f.cat)
                .with("ph", if f.start { "s" } else { "f" })
                .with("id", f.id)
                .with("ts", f.ts)
                .with("pid", f.pid)
                .with("tid", f.tid);
            if !f.start {
                // Bind the finish to the enclosing slice, not the next one.
                obj = obj.with("bp", "e");
            }
            events.push(obj);
        }
        JsonValue::object()
            .with("traceEvents", JsonValue::Array(events))
            .with("displayTimeUnit", "ns")
    }

    /// Serializes the document to a JSON string.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

fn metadata_event(kind: &str, pid: u32, tid: u32, name: &str) -> JsonValue {
    JsonValue::object()
        .with("name", kind)
        .with("ph", "M")
        .with("pid", pid)
        .with("tid", tid)
        .with("args", JsonValue::object().with("name", name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn document_shape_is_trace_event_format() {
        let mut trace = ChromeTrace::new();
        trace.name_process(1, "cores");
        trace.name_thread(1, 0, "core 0");
        trace.push(ChromeEvent {
            name: "load miss".to_owned(),
            cat: "mem",
            ts: 100,
            dur: 40,
            pid: 1,
            tid: 0,
            args: vec![("line".to_owned(), JsonValue::UInt(0xabc))],
        });
        let doc = trace.to_json();
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(events.len(), 3);
        // Metadata events come first.
        assert_eq!(events[0].get("ph").and_then(JsonValue::as_str), Some("M"));
        let slice = &events[2];
        assert_eq!(slice.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(slice.get("ts").and_then(JsonValue::as_u64), Some(100));
        assert_eq!(slice.get("dur").and_then(JsonValue::as_u64), Some(40));
        assert_eq!(
            slice
                .get("args")
                .and_then(|a| a.get("line"))
                .and_then(JsonValue::as_u64),
            Some(0xabc)
        );
    }

    #[test]
    fn flow_endpoints_serialize_as_s_and_f_phases() {
        let mut trace = ChromeTrace::new();
        trace.push_flow(FlowEvent {
            name: "stall".to_owned(),
            cat: "attribution",
            id: 7,
            ts: 120,
            pid: 4,
            tid: 0,
            start: true,
        });
        trace.push_flow(FlowEvent {
            name: "stall".to_owned(),
            cat: "attribution",
            id: 7,
            ts: 150,
            pid: 1,
            tid: 0,
            start: false,
        });
        assert_eq!(trace.flow_len(), 2);
        let doc = trace.to_json();
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        let start = &events[0];
        assert_eq!(start.get("ph").and_then(JsonValue::as_str), Some("s"));
        assert_eq!(start.get("id").and_then(JsonValue::as_u64), Some(7));
        assert!(start.get("bp").is_none());
        let finish = &events[1];
        assert_eq!(finish.get("ph").and_then(JsonValue::as_str), Some("f"));
        assert_eq!(finish.get("bp").and_then(JsonValue::as_str), Some("e"));
        assert_eq!(finish.get("id").and_then(JsonValue::as_u64), Some(7));
    }

    #[test]
    fn serialized_document_parses_back() {
        let mut trace = ChromeTrace::new();
        trace.push(ChromeEvent {
            name: "e2e".to_owned(),
            cat: "request",
            ts: 0,
            dur: 1,
            pid: 2,
            tid: 3,
            args: Vec::new(),
        });
        let text = trace.to_string_pretty();
        let parsed = json::parse(&text).unwrap();
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = ChromeTrace::new().to_json();
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(events.is_empty());
    }
}
