//! Live run introspection: streaming status snapshots.
//!
//! The metrics document, the stall-attribution tables and the host
//! profile are all post-mortem — nothing is visible until the run
//! exits. This module is the out-of-band live plane: the orchestrator
//! hands a [`StatusEmitter`] a [`StatusSnapshot`] of *simulated* state
//! on a host-time cadence, and the emitter appends one JSON line per
//! snapshot to a bounded history file, replaced atomically
//! (tmp + rename) so a concurrent reader (`coyote-top`, a sweep
//! service) never observes a torn write.
//!
//! # The wall-clock exception
//!
//! Alongside [`crate::hostprof`], this is one of the two files the
//! `wall-clock` lint allows to call [`Instant::now`] (path-pinned in
//! `coyote_lint::lint::WALL_CLOCK_FILES`). The determinism argument is
//! the same and stays local to this file: host time decides *when* a
//! snapshot is cut and feeds the host-rate fields (`host_mips`,
//! `eta_seconds`) of the emitted line, but no value derived from the
//! clock is ever returned to the simulator — [`StatusEmitter::due`]
//! returns only a bool consumed by an observation-only branch, and
//! [`StatusEmitter::emit`] borrows the snapshot immutably. Status
//! emission on/off therefore cannot perturb the simulated schedule;
//! the `status_invariance` proptests in `crates/core` pin digest and
//! metrics bytes across the knob.

use std::collections::VecDeque;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::json::JsonValue;
use crate::SCHEMA_VERSION;

/// Maximum snapshot lines retained in the status file; older lines
/// roll off so the file stays bounded for arbitrarily long runs.
pub const STATUS_HISTORY: usize = 256;

/// How many [`StatusEmitter::due`] calls elapse between actual clock
/// reads. The orchestrator polls once per simulated cycle, which can
/// run in the tens of nanoseconds; amortizing the `Instant::now` call
/// keeps the always-off cost of the live plane at a counter increment.
const DUE_CHECK_STRIDE: u32 = 64;

/// Per-core slice of a [`StatusSnapshot`]: purely simulated state.
#[derive(Debug, Clone, Default)]
pub struct CoreStatus {
    /// Core index.
    pub core: usize,
    /// Execution state name (`active`, `stalled_dep`, `stalled_fetch`,
    /// `halted`).
    pub state: &'static str,
    /// Current program counter (next instruction, or the stalled one).
    pub pc: u64,
    /// Instructions retired so far (cumulative).
    pub retired: u64,
    /// Cumulative CPI-stack cycles `[active, dep_stall, fetch_stall,
    /// drained]` from the stall-attribution layer; the emitter
    /// differences consecutive snapshots into the per-interval deltas
    /// the JSON line carries.
    pub cpi: [u64; 4],
}

/// One cut of simulated run state, as assembled by the orchestrator.
/// Every field is a pure function of the simulation; the emitter adds
/// the host-side rate fields when serializing.
#[derive(Debug, Clone, Default)]
pub struct StatusSnapshot {
    /// Current simulated cycle.
    pub cycle: u64,
    /// Configured cycle budget.
    pub max_cycles: u64,
    /// Instructions retired across cores (cumulative).
    pub retired: u64,
    /// Fraction of retirements through the superblock fused path.
    pub block_hit_rate: f64,
    /// Parallel-phase conflict fallbacks so far.
    pub conflict_fallbacks: u64,
    /// Whether a static disjointness certificate is currently in force.
    pub certificate_active: bool,
    /// Events popped from the hierarchy event queue so far.
    pub event_pops: u64,
    /// Cores halted so far.
    pub halted: u64,
    /// Per-core state.
    pub cores: Vec<CoreStatus>,
}

/// Names of the CPI-stack columns in [`CoreStatus::cpi`] order, used
/// as the JSON keys of the per-core `cpi` object.
pub const CPI_COLS: [&str; 4] = ["active", "dep_stall", "fetch_stall", "drained"];

/// Streams status snapshots to a file as bounded JSON lines.
///
/// Create one with [`StatusEmitter::create`], poll [`StatusEmitter::due`]
/// from the run loop, and hand over a [`StatusSnapshot`] when it says
/// so. The final snapshot of a run should be emitted unconditionally
/// so short runs still produce a file.
#[derive(Debug)]
pub struct StatusEmitter {
    path: PathBuf,
    tmp: PathBuf,
    /// Emission cadence in host milliseconds.
    interval_ms: u64,
    started: Instant,
    /// Host nanoseconds (since `started`) at which the next snapshot
    /// is due.
    next_due_ns: u64,
    /// Rolling call counter for the amortized clock read in `due`.
    calls: u32,
    /// Monotone snapshot sequence number.
    seq: u64,
    /// Bounded history of serialized lines.
    history: VecDeque<String>,
    /// Host seconds at the previous emit (rate denominators).
    last_elapsed: f64,
    /// Cycle / retired totals at the previous emit (rate numerators).
    last_cycle: u64,
    last_retired: u64,
    /// Per-core cumulative CPI columns at the previous emit.
    last_cpi: Vec<[u64; 4]>,
}

impl StatusEmitter {
    /// Builds an emitter writing to `path` every `interval_ms` host
    /// milliseconds, and writes an initial empty status file so a
    /// bad path fails the run up front instead of silently dropping
    /// every snapshot.
    ///
    /// # Errors
    ///
    /// Rejects an empty path and a zero interval; propagates the
    /// initial write failure.
    pub fn create(path: impl Into<PathBuf>, interval_ms: u64) -> Result<StatusEmitter, String> {
        let path = path.into();
        if path.as_os_str().is_empty() || path.to_string_lossy().trim().is_empty() {
            return Err("status path must be non-empty".to_owned());
        }
        if interval_ms == 0 {
            return Err("status interval must be at least 1 ms".to_owned());
        }
        let tmp = sibling_tmp(&path);
        fs::write(&path, b"").map_err(|e| format!("writing {}: {e}", path.display()))?;
        Ok(StatusEmitter {
            path,
            tmp,
            interval_ms,
            started: Instant::now(),
            next_due_ns: interval_ms.saturating_mul(1_000_000),
            calls: 0,
            seq: 0,
            history: VecDeque::new(),
            last_elapsed: 0.0,
            last_cycle: 0,
            last_retired: 0,
            last_cpi: Vec::new(),
        })
    }

    /// The status file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The emission cadence in host milliseconds.
    #[must_use]
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Whether a snapshot is due. Cheap enough to poll every simulated
    /// cycle: the host clock is only read every [`DUE_CHECK_STRIDE`]
    /// calls. The returned bool gates an observation-only branch — it
    /// never reaches simulated state.
    pub fn due(&mut self) -> bool {
        self.calls += 1;
        if self.calls < DUE_CHECK_STRIDE {
            return false;
        }
        self.calls = 0;
        let elapsed_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        elapsed_ns >= self.next_due_ns
    }

    /// Serializes `snap` as one JSON line, appends it to the bounded
    /// history, and atomically replaces the status file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing or renaming the file; the run
    /// itself should treat these as fatal only at setup time (see
    /// [`StatusEmitter::create`]) — mid-run the caller may drop them.
    pub fn emit(&mut self, snap: &StatusSnapshot) -> io::Result<()> {
        let elapsed = self.started.elapsed().as_secs_f64();
        let line = self.render_line(snap, elapsed);
        if self.history.len() == STATUS_HISTORY {
            self.history.pop_front();
        }
        self.history.push_back(line);
        self.seq += 1;
        self.last_elapsed = elapsed;
        self.last_cycle = snap.cycle;
        self.last_retired = snap.retired;
        self.last_cpi = snap.cores.iter().map(|c| c.cpi).collect();
        let elapsed_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let interval_ns = self.interval_ms.saturating_mul(1_000_000);
        self.next_due_ns = elapsed_ns.saturating_add(interval_ns);

        let mut out = String::new();
        for line in &self.history {
            out.push_str(line);
            out.push('\n');
        }
        fs::write(&self.tmp, out.as_bytes())?;
        fs::rename(&self.tmp, &self.path)
    }

    /// Builds the JSON line for `snap` at host time `elapsed` seconds.
    fn render_line(&self, snap: &StatusSnapshot, elapsed: f64) -> String {
        let dt = elapsed - self.last_elapsed;
        let dcycles = snap.cycle.saturating_sub(self.last_cycle);
        let dretired = snap.retired.saturating_sub(self.last_retired);
        let (host_mips, cycles_per_sec) = if dt > 0.0 {
            (dretired as f64 / dt / 1.0e6, dcycles as f64 / dt)
        } else {
            (0.0, 0.0)
        };
        // ETA to the cycle budget at the current cycle rate — an upper
        // bound: runs that halt before `max_cycles` finish sooner.
        // Negative and divide-by-zero cases clamp to 0.
        let remaining = snap.max_cycles.saturating_sub(snap.cycle);
        let eta_seconds = if cycles_per_sec > 0.0 {
            remaining as f64 / cycles_per_sec
        } else {
            0.0
        };
        let cores: Vec<JsonValue> = snap
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let prev = self.last_cpi.get(i).copied().unwrap_or([0; 4]);
                let mut cpi = JsonValue::object();
                for (col, name) in CPI_COLS.iter().enumerate() {
                    cpi = cpi.with(name, core.cpi[col].saturating_sub(prev[col]));
                }
                JsonValue::object()
                    .with("core", core.core)
                    .with("state", core.state)
                    .with("pc", core.pc)
                    .with("retired", core.retired)
                    .with("cpi", cpi)
            })
            .collect();
        JsonValue::object()
            .with("schema_version", SCHEMA_VERSION)
            .with("seq", self.seq)
            .with("cycle", snap.cycle)
            .with("max_cycles", snap.max_cycles)
            .with("retired", snap.retired)
            .with("elapsed_seconds", elapsed)
            .with("host_mips", host_mips)
            .with("cycles_per_sec", cycles_per_sec)
            .with("eta_seconds", eta_seconds)
            .with("block_hit_rate", snap.block_hit_rate)
            .with("conflict_fallbacks", snap.conflict_fallbacks)
            .with("certificate_active", snap.certificate_active)
            .with("event_pops", snap.event_pops)
            .with("halted", snap.halted)
            .with("cores", JsonValue::Array(cores))
            .to_string_compact()
    }
}

/// The sibling temp path the atomic replace writes through: same
/// directory (so the rename cannot cross filesystems), `.tmp` suffix.
fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| "status".to_owned(), |n| n.to_string_lossy().into_owned());
    name.push_str(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cycle: u64, retired: u64) -> StatusSnapshot {
        StatusSnapshot {
            cycle,
            max_cycles: 1_000_000,
            retired,
            block_hit_rate: 0.5,
            conflict_fallbacks: 1,
            certificate_active: false,
            event_pops: 7,
            halted: 0,
            cores: vec![CoreStatus {
                core: 0,
                state: "active",
                pc: 0x8000_0000,
                retired,
                cpi: [cycle, 2, 1, 0],
            }],
        }
    }

    #[test]
    fn create_rejects_bad_arguments() {
        assert!(StatusEmitter::create("", 100).is_err());
        assert!(StatusEmitter::create("   ", 100).is_err());
        let dir = std::env::temp_dir().join("coyote-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(StatusEmitter::create(dir.join("zero.jsonl"), 0).is_err());
    }

    #[test]
    fn emit_appends_lines_and_replaces_atomically() {
        let dir = std::env::temp_dir().join("coyote-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("emit.jsonl");
        let mut emitter = StatusEmitter::create(&path, 100).unwrap();
        emitter.emit(&snap(100, 50)).unwrap();
        emitter.emit(&snap(200, 120)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::parse(lines[0]).unwrap();
        let second = crate::json::parse(lines[1]).unwrap();
        assert_eq!(first.get("seq").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(second.get("seq").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(second.get("cycle").and_then(JsonValue::as_u64), Some(200));
        // CPI columns are deltas between consecutive snapshots.
        let cpi = second.get("cores").and_then(JsonValue::as_array).unwrap()[0]
            .get("cpi")
            .unwrap()
            .clone();
        assert_eq!(cpi.get("active").and_then(JsonValue::as_u64), Some(100));
        assert_eq!(cpi.get("dep_stall").and_then(JsonValue::as_u64), Some(0));
        // No stray tmp file survives the rename.
        assert!(!sibling_tmp(&path).exists());
    }

    #[test]
    fn history_is_bounded() {
        let dir = std::env::temp_dir().join("coyote-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bounded.jsonl");
        let mut emitter = StatusEmitter::create(&path, 100).unwrap();
        for i in 0..(STATUS_HISTORY as u64 + 10) {
            emitter.emit(&snap(i, i)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), STATUS_HISTORY);
        let first = crate::json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("seq").and_then(JsonValue::as_u64), Some(10));
    }

    #[test]
    fn due_is_amortized_and_respects_the_interval() {
        let dir = std::env::temp_dir().join("coyote-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("due.jsonl");
        // An hour-long interval can never be due inside a unit test.
        let mut emitter = StatusEmitter::create(&path, 3_600_000).unwrap();
        for _ in 0..10_000 {
            assert!(!emitter.due());
        }
    }
}
