//! Epoch-sampled time series with bounded memory.
//!
//! The simulator pushes one [`Sample`] per metrics epoch. To keep the
//! ring in-memory for arbitrarily long runs, the series compacts by
//! merging adjacent sample pairs once it reaches its capacity: summed
//! counters add, occupancy gauges keep their end-of-epoch value, and
//! the effective epoch length doubles. Compaction preserves every
//! column's total, so invariants like "per-epoch retired deltas sum to
//! total retired" survive any number of compactions.

use crate::{Blame, BLAME_COLS};

/// Delta counters and end-of-epoch gauges for one metrics epoch.
///
/// `retired`/`hits`-style fields are deltas over `[start, end)`;
/// `*_occupancy`/`*_depth` fields are gauges sampled at `end`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sample {
    /// First cycle covered by this epoch (inclusive).
    pub start: u64,
    /// Last cycle covered by this epoch (exclusive).
    pub end: u64,
    /// Instructions retired across all cores during the epoch.
    pub retired: u64,
    /// Cycles cores spent stalled on RAW dependencies during the epoch.
    pub dep_stall_cycles: u64,
    /// Cycles cores spent stalled on instruction fetch during the epoch.
    pub fetch_stall_cycles: u64,
    /// L2 hits across all banks during the epoch.
    pub l2_hits: u64,
    /// L2 misses across all banks during the epoch.
    pub l2_misses: u64,
    /// NoC traversals during the epoch.
    pub noc_traversals: u64,
    /// Requests completed by the hierarchy during the epoch.
    pub completed: u64,
    /// Outstanding MSHR entries summed over banks, at epoch end.
    pub mshr_occupancy: u64,
    /// Requests parked waiting for an MSHR, summed over banks, at epoch end.
    pub queued_requests: u64,
    /// Requests in flight anywhere in the hierarchy at epoch end.
    pub in_flight: u64,
    /// Memory-controller channels busy at epoch end.
    pub mc_busy_channels: u64,
    /// Per-core `[retired, dep_stall_cycles, fetch_stall_cycles]` deltas.
    pub per_core: Vec<[u64; 3]>,
    /// Per-core dependency-stall cycle deltas by attribution category
    /// ([`Blame::ALL`] order, then `other`). Counts closed stall
    /// intervals only, so an epoch's columns can lag
    /// `dep_stall_cycles` by at most one in-progress stall per core.
    pub per_core_blame: Vec<[u64; BLAME_COLS]>,
    /// Per-bank `[hits, misses, mshr_occupancy]`; the first two are
    /// deltas, the third is an end-of-epoch gauge.
    pub per_bank: Vec<[u64; 3]>,
}

impl Sample {
    /// Cycles covered by this epoch.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Aggregate IPC over the epoch (0.0 for empty epochs).
    #[must_use]
    pub fn ipc(&self, cores: usize) -> f64 {
        let core_cycles = self.cycles().saturating_mul(cores as u64);
        if core_cycles == 0 {
            0.0
        } else {
            self.retired as f64 / core_cycles as f64
        }
    }

    fn absorb(&mut self, next: &Sample) {
        debug_assert!(self.end <= next.start, "samples out of order");
        self.end = next.end;
        self.retired += next.retired;
        self.dep_stall_cycles += next.dep_stall_cycles;
        self.fetch_stall_cycles += next.fetch_stall_cycles;
        self.l2_hits += next.l2_hits;
        self.l2_misses += next.l2_misses;
        self.noc_traversals += next.noc_traversals;
        self.completed += next.completed;
        // Gauges: the merged epoch ends where `next` ended.
        self.mshr_occupancy = next.mshr_occupancy;
        self.queued_requests = next.queued_requests;
        self.in_flight = next.in_flight;
        self.mc_busy_channels = next.mc_busy_channels;
        merge_triples(&mut self.per_core, &next.per_core, [true, true, true]);
        merge_triples(
            &mut self.per_core_blame,
            &next.per_core_blame,
            [true; BLAME_COLS],
        );
        merge_triples(&mut self.per_bank, &next.per_bank, [true, true, false]);
    }
}

/// Element-wise merge of `[u64; N]` rows: `add[i]` sums the column,
/// otherwise the later (gauge) value wins.
fn merge_triples<const N: usize>(into: &mut Vec<[u64; N]>, from: &[[u64; N]], add: [bool; N]) {
    if into.len() < from.len() {
        into.resize(from.len(), [0; N]);
    }
    for (mine, theirs) in into.iter_mut().zip(from) {
        for i in 0..N {
            if add[i] {
                mine[i] += theirs[i];
            } else {
                mine[i] = theirs[i];
            }
        }
    }
}

/// A bounded, compacting sequence of epoch samples.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    samples: Vec<Sample>,
    capacity: usize,
    compactions: u32,
}

impl TimeSeries {
    /// Default capacity before pair-merge compaction kicks in.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A series that compacts once it holds `capacity` samples
    /// (minimum 2).
    #[must_use]
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            samples: Vec::new(),
            capacity: capacity.max(2),
            compactions: 0,
        }
    }

    /// Appends one epoch sample, compacting first if at capacity.
    pub fn push(&mut self, sample: Sample) {
        if self.samples.len() >= self.capacity {
            self.compact();
        }
        self.samples.push(sample);
    }

    /// Merges adjacent pairs in place, halving the length (an odd
    /// trailing sample is kept as-is).
    fn compact(&mut self) {
        let mut merged = Vec::with_capacity(self.samples.len() / 2 + 1);
        let mut iter = self.samples.drain(..);
        while let Some(mut first) = iter.next() {
            if let Some(second) = iter.next() {
                first.absorb(&second);
            }
            merged.push(first);
        }
        drop(iter);
        self.samples = merged;
        self.compactions += 1;
    }

    /// The samples currently held, in time order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// How many pair-merge compactions have run.
    #[must_use]
    pub fn compactions(&self) -> u32 {
        self.compactions
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serializes the series as CSV: a header row, then one row per
    /// epoch. Per-core and per-bank columns are sized by the widest
    /// sample, and rows missing those entries report 0.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let cores = self
            .samples
            .iter()
            .map(|s| s.per_core.len())
            .max()
            .unwrap_or(0);
        let banks = self
            .samples
            .iter()
            .map(|s| s.per_bank.len())
            .max()
            .unwrap_or(0);

        let mut out = String::new();
        out.push_str(
            "epoch,start,end,retired,ipc,dep_stall_frac,fetch_stall_frac,\
             l2_hits,l2_misses,noc_traversals,completed,\
             mshr_occupancy,queued_requests,in_flight,mc_busy_channels",
        );
        let blame_cores = self
            .samples
            .iter()
            .map(|s| s.per_core_blame.len())
            .max()
            .unwrap_or(0);
        for c in 0..cores {
            let _ = write!(
                out,
                ",core{c}_retired,core{c}_dep_stall,core{c}_fetch_stall"
            );
        }
        for c in 0..blame_cores {
            for blame in Blame::ALL {
                let _ = write!(out, ",core{c}_dep_{}", blame.name());
            }
            let _ = write!(out, ",core{c}_dep_other");
        }
        for b in 0..banks {
            let _ = write!(out, ",bank{b}_hits,bank{b}_misses,bank{b}_mshr");
        }
        out.push('\n');

        for (epoch, s) in self.samples.iter().enumerate() {
            let cycles = s.cycles();
            let core_cycles = cycles.saturating_mul(cores.max(1) as u64);
            let frac = |v: u64| {
                if core_cycles == 0 {
                    0.0
                } else {
                    v as f64 / core_cycles as f64
                }
            };
            let _ = write!(
                out,
                "{epoch},{},{},{},{:.6},{:.6},{:.6},{},{},{},{},{},{},{},{}",
                s.start,
                s.end,
                s.retired,
                s.ipc(cores.max(1)),
                frac(s.dep_stall_cycles),
                frac(s.fetch_stall_cycles),
                s.l2_hits,
                s.l2_misses,
                s.noc_traversals,
                s.completed,
                s.mshr_occupancy,
                s.queued_requests,
                s.in_flight,
                s.mc_busy_channels,
            );
            for c in 0..cores {
                let row = s.per_core.get(c).copied().unwrap_or([0; 3]);
                let _ = write!(out, ",{},{},{}", row[0], row[1], row[2]);
            }
            for c in 0..blame_cores {
                let row = s.per_core_blame.get(c).copied().unwrap_or([0; BLAME_COLS]);
                for value in row {
                    let _ = write!(out, ",{value}");
                }
            }
            for b in 0..banks {
                let row = s.per_bank.get(b).copied().unwrap_or([0; 3]);
                let _ = write!(out, ",{},{},{}", row[0], row[1], row[2]);
            }
            out.push('\n');
        }
        out
    }
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(start: u64, end: u64, retired: u64) -> Sample {
        Sample {
            start,
            end,
            retired,
            per_core: vec![[retired, 1, 0], [0, 2, 1]],
            per_bank: vec![[3, 1, 2]],
            mshr_occupancy: retired % 5,
            ..Sample::default()
        }
    }

    #[test]
    fn push_below_capacity_keeps_all_samples() {
        let mut ts = TimeSeries::new(8);
        for i in 0..5 {
            ts.push(sample(i * 100, (i + 1) * 100, 10));
        }
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.compactions(), 0);
    }

    #[test]
    fn compaction_preserves_counter_totals() {
        let mut ts = TimeSeries::new(4);
        let mut pushed_retired = 0u64;
        for i in 0..33 {
            let s = sample(i * 100, (i + 1) * 100, i + 1);
            pushed_retired += s.retired;
            ts.push(s);
        }
        assert!(ts.compactions() > 0);
        assert!(ts.len() <= 4 + 1);
        let total: u64 = ts.samples().iter().map(|s| s.retired).sum();
        assert_eq!(total, pushed_retired);
        // Per-core retired column keeps the same total too.
        let core0: u64 = ts.samples().iter().map(|s| s.per_core[0][0]).sum();
        assert_eq!(core0, pushed_retired);
        // Time coverage stays contiguous.
        assert_eq!(ts.samples().first().unwrap().start, 0);
        assert_eq!(ts.samples().last().unwrap().end, 3300);
        for pair in ts.samples().windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn odd_sample_count_compacts_pairwise_and_keeps_the_trailer() {
        // Five samples at capacity: pairs (0,1) and (2,3) merge, the
        // odd trailing sample rides along untouched.
        let mut ts = TimeSeries::new(5);
        for i in 0..5u64 {
            ts.push(sample(i * 100, (i + 1) * 100, i + 1));
        }
        assert_eq!(ts.len(), 5);
        ts.push(sample(500, 600, 6));
        assert_eq!(ts.compactions(), 1);
        assert_eq!(ts.len(), 4);
        let retired: Vec<u64> = ts.samples().iter().map(|s| s.retired).collect();
        assert_eq!(retired, vec![3, 7, 5, 6]);
        // The odd trailer kept its exact bounds and the merged pairs
        // doubled their epoch length.
        assert_eq!(ts.samples()[0].cycles(), 200);
        assert_eq!(ts.samples()[2].start, 400);
        assert_eq!(ts.samples()[2].end, 500);
        // Coverage stays contiguous across the odd boundary.
        for pair in ts.samples().windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn repeated_odd_compactions_preserve_totals() {
        // Minimum capacity (2) forces a compaction on nearly every
        // push; with an odd length at each step the trailer path runs
        // constantly. No counter mass may be created or destroyed.
        let mut ts = TimeSeries::new(2);
        let mut pushed = 0u64;
        for i in 0..17u64 {
            let s = sample(i * 10, (i + 1) * 10, i + 1);
            pushed += s.retired;
            ts.push(s);
        }
        assert!(ts.compactions() >= 4);
        let total: u64 = ts.samples().iter().map(|s| s.retired).sum();
        assert_eq!(total, pushed);
        assert_eq!(ts.samples().first().unwrap().start, 0);
        assert_eq!(ts.samples().last().unwrap().end, 170);
    }

    #[test]
    fn gauges_take_end_of_epoch_value() {
        let mut a = sample(0, 100, 4); // mshr gauge 4
        let b = sample(100, 200, 7); // mshr gauge 2
        a.absorb(&b);
        assert_eq!(a.mshr_occupancy, 2);
        // Bank column 2 is a gauge: takes b's value, not the sum.
        assert_eq!(a.per_bank[0][2], 2);
        // Bank columns 0/1 are counters: summed.
        assert_eq!(a.per_bank[0][0], 6);
    }

    #[test]
    fn csv_has_header_and_per_entity_columns() {
        let mut ts = TimeSeries::new(8);
        ts.push(sample(0, 1000, 500));
        let csv = ts.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("epoch,start,end,retired,ipc"));
        assert!(header.contains("core1_dep_stall"));
        assert!(header.contains("bank0_mshr"));
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
        assert!(lines.next().is_none());
    }

    #[test]
    fn blame_columns_absorb_and_serialize() {
        let mut a = sample(0, 100, 4);
        a.per_core_blame = vec![[1, 2, 3, 4, 5, 6]];
        let mut b = sample(100, 200, 7);
        b.per_core_blame = vec![[10, 0, 0, 0, 0, 1], [2, 0, 0, 0, 0, 0]];
        a.absorb(&b);
        assert_eq!(
            a.per_core_blame,
            vec![[11, 2, 3, 4, 5, 7], [2, 0, 0, 0, 0, 0]]
        );

        let mut ts = TimeSeries::new(8);
        ts.push(a);
        let csv = ts.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("core0_dep_noc"));
        assert!(header.contains("core1_dep_mc"));
        assert!(header.contains("core0_dep_other"));
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
    }

    #[test]
    fn empty_series_yields_header_only() {
        let ts = TimeSeries::default();
        let csv = ts.to_csv();
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn ipc_handles_zero_length_epochs() {
        let s = Sample {
            start: 5,
            end: 5,
            retired: 10,
            ..Sample::default()
        };
        assert_eq!(s.ipc(4), 0.0);
    }
}
