//! Workspace-level umbrella for the Coyote reproduction: re-exports the
//! member crates so the examples and integration tests have a single
//! import surface. See the `coyote` crate for the simulator itself.

pub use coyote;
pub use coyote_asm;
pub use coyote_isa;
pub use coyote_iss;
pub use coyote_kernels;
pub use coyote_mem;
